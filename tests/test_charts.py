"""Tests for the ASCII chart renderer."""

from repro.experiments.charts import horizontal_bars, sparkline
from repro.experiments.common import ExperimentResult


def make_result():
    result = ExperimentResult("x", "Chart title", ["alpha", "beta"])
    result.add_row("w1", alpha=1.0, beta=2.0)
    result.add_row("w2", alpha=0.5, beta=4.0)
    return result


class TestHorizontalBars:
    def test_contains_title_legend_and_labels(self):
        text = horizontal_bars(make_result())
        assert "Chart title" in text
        assert "legend:" in text
        assert "w1" in text and "w2" in text

    def test_bar_lengths_scale_with_values(self):
        text = horizontal_bars(make_result(), columns=["beta"], width=40)
        lines = [l for l in text.splitlines() if "|" in l]
        w1_bar = lines[0].split("|")[1].split()[0]
        w2_bar = lines[1].split("|")[1].split()[0]
        assert len(w2_bar) == 2 * len(w1_bar)

    def test_empty_result(self):
        empty = ExperimentResult("x", "t", ["a"])
        assert "nothing to chart" in horizontal_bars(empty)

    def test_missing_cells_skipped(self):
        result = ExperimentResult("x", "t", ["a", "b"])
        result.add_row("w1", a=1.0)
        text = horizontal_bars(result)
        assert text.count("|") == 1

    def test_max_rows_respected(self):
        result = ExperimentResult("x", "t", ["a"])
        for i in range(30):
            result.add_row(f"w{i}", a=1.0)
        text = horizontal_bars(result, max_rows=5)
        assert "w4" in text
        assert "w5" not in text


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([3.0, 3.0, 3.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_uses_rising_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_width_resampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
