"""End-to-end property tests: random mini-workloads through the full stack.

Hypothesis generates small synthetic workloads (random block/warp/op
shapes and address patterns) and runs them under randomly chosen systems;
the conservation invariants must hold for every one.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import GpuUvmSimulator, systems
from repro.errors import SimulationError, SimulationStalledError
from repro.gpu.occupancy import KernelResources
from repro.vm.address_space import AddressSpace
from repro.workloads.trace import (
    BlockTrace,
    KernelTrace,
    WarpOpsBuilder,
    Workload,
)

PAGE_SIZE = 4096


@st.composite
def mini_workloads(draw):
    """A random workload over two arrays with mixed access patterns."""
    num_blocks = draw(st.integers(min_value=1, max_value=4))
    warps_per_block = draw(st.integers(min_value=1, max_value=2))
    ops_per_warp = draw(st.integers(min_value=1, max_value=8))
    array_pages = draw(st.integers(min_value=2, max_value=12))

    vas = AddressSpace(PAGE_SIZE)
    data = vas.allocate("data", array_pages * PAGE_SIZE // 8, 8)
    aux = vas.allocate("aux", PAGE_SIZE // 8, 8)

    blocks = []
    for b in range(num_blocks):
        warp_ops = []
        for w in range(warps_per_block):
            ops = WarpOpsBuilder(compute_cycles=8)
            for i in range(ops_per_warp):
                indices = draw(
                    st.lists(
                        st.integers(0, data.num_elements - 1),
                        min_size=1,
                        max_size=6,
                    )
                )
                addrs = [data.addr_unchecked(j) for j in indices]
                if draw(st.booleans()):
                    addrs.append(aux.addr_unchecked(i % aux.num_elements))
                ops.access(addrs, is_store=draw(st.booleans()))
            warp_ops.append(ops.build())
        blocks.append(BlockTrace(warp_ops))
    kernel = KernelTrace(
        "mini", blocks, KernelResources(threads_per_block=32 * warps_per_block)
    )
    return Workload("MINI", vas, [kernel], num_sms_hint=1)


def run_or_reject_livelock(sim, max_events=5_000_000):
    """Run ``sim``; reject (``assume``) examples that thrash forever.

    An oversubscribed random workload can livelock by construction:
    two warps whose current ops together need more pages than there are
    frames keep evicting each other's pages on every replay, and the
    deterministic timing never breaks the tie.  Forward progress under
    such capacity pressure is not the invariant under test (see
    ``configure_with_floor``), so reject exactly the event-cap outcome —
    a drained-queue deadlock or a watchdog stall is still a real bug and
    propagates.
    """
    try:
        return sim.run(max_events=max_events)
    except SimulationStalledError:
        raise
    except SimulationError as err:
        if "event cap of" in str(err):
            assume(False)
        raise


def configure_with_floor(preset, workload, ratio, min_frames=8):
    """A warp op can need several pages resident *simultaneously*; give
    every random memory at least ``min_frames`` frames so forward
    progress is always possible (capacity-1 memories livelock by
    construction, which is not the invariant under test)."""
    config = preset.configure(workload, ratio=ratio)
    frames = config.uvm.frames
    if frames is not None and frames < min_frames:
        config = config.with_memory_bytes(min_frames * PAGE_SIZE)
    return config


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    workload=mini_workloads(),
    preset=st.sampled_from(
        [systems.BASELINE, systems.UE, systems.TO_UE, systems.IDEAL_EVICTION]
    ),
    ratio=st.sampled_from([0.6, 0.8, 1.0]),
)
def test_random_workload_invariants(workload, preset, ratio):
    config = configure_with_floor(preset, workload, ratio)
    sim = GpuUvmSimulator(workload, config)
    result = run_or_reject_livelock(sim)

    # Completion and accounting invariants.
    assert result.exec_cycles > 0
    assert result.migrated_pages >= result.unique_fault_pages
    assert result.batch_stats.total_migrated_pages == result.migrated_pages
    assert sim.page_table.resident_pages == sim.memory.resident_pages
    if config.uvm.frames is not None:
        assert sim.memory.resident_pages <= config.uvm.frames
    assert (
        sim.memory.allocations - sim.memory.evictions
        == sim.memory.resident_pages
    )
    # Nothing left hanging.
    assert not sim.runtime.waiting_pages()
    assert sim.runtime.fault_buffer.empty
    # Every resident page belongs to the workload.
    assert sim.page_table.resident_set() <= workload.address_space.all_pages()
    # Batch records are complete and well-ordered.
    for record in result.batch_stats.records:
        assert record.complete
        assert record.begin_time <= record.first_migration_time <= record.end_time


@settings(max_examples=8, deadline=None)
@given(workload=mini_workloads())
def test_random_workload_determinism(workload):
    config = configure_with_floor(systems.TO_UE, workload, ratio=0.8)
    a = run_or_reject_livelock(GpuUvmSimulator(workload, config))
    b = run_or_reject_livelock(GpuUvmSimulator(workload, config))
    assert a.exec_cycles == b.exec_cycles
    assert a.evicted_pages == b.evicted_pages
    assert a.batch_stats.num_batches == b.batch_stats.num_batches
