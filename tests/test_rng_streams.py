"""RNG-stream audit: every random draw is a named, seeded, picklable stream.

Checkpoint/restore is only bit-identical if *no* randomness hides in
global state: every stream must be (a) derived from an explicit seed,
(b) owned by an object that pickles with its full Mersenne state, and
(c) never the shared module-level ``random`` generator.  The lint test
greps the source tree for bare ``random.<draw>()`` calls; the behavioural
tests pin the derivation, independence, and pickle round-trip of the
chaos streams (the only stdlib-``random`` users in the package).
"""

from __future__ import annotations

import pathlib
import pickle
import random
import re

from repro.chaos.config import parse_chaos_spec
from repro.chaos.injectors import INJECTOR_KINDS, ChaosSession, _derive_rng

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

#: Module-level draw/seed functions of the ``random`` module.  Calling
#: any of these uses the hidden global generator — unseeded per process,
#: invisible to checkpoints, and shared across components.
_BARE_RANDOM = re.compile(
    r"(?<![\w.])random\.("
    r"random|randint|randrange|randbytes|choice|choices|shuffle|sample|"
    r"uniform|seed|getstate|setstate|getrandbits|gauss|normalvariate|"
    r"expovariate|betavariate|triangular|vonmisesvariate|paretovariate|"
    r"weibullvariate|lognormvariate"
    r")\s*\("
)

#: Module-level use of numpy's legacy global generator (``np.random.seed``
#: / ``np.random.rand`` etc.).  ``np.random.default_rng(seed)`` and
#: ``np.random.Generator`` are the sanctioned forms.
_BARE_NP_RANDOM = re.compile(
    r"np\.random\.(?!default_rng|Generator|SeedSequence)[a-z_]+\s*\("
)


def test_no_bare_random_calls_in_source():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if _BARE_RANDOM.search(line) or _BARE_NP_RANDOM.search(line):
                offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "bare global-RNG call(s) found — use a named, seeded stream "
        "(random.Random(seed) / np.random.default_rng(seed)) so "
        "checkpoints capture the state:\n" + "\n".join(offenders)
    )


def test_derived_streams_are_deterministic_and_independent():
    # Same (seed, kind) -> identical sequence; different kinds -> distinct.
    draws = {
        kind: [_derive_rng(7, kind).random() for _ in range(4)]
        for kind in INJECTOR_KINDS
    }
    for kind in INJECTOR_KINDS:
        again = [_derive_rng(7, kind).random() for _ in range(4)]
        assert again == draws[kind]
    sequences = [tuple(seq) for seq in draws.values()]
    assert len(set(sequences)) == len(sequences), (
        "injector kinds share an RNG stream"
    )
    # And the base seed matters.
    assert [_derive_rng(8, "drop-fault").random()] != [
        _derive_rng(7, "drop-fault").random()
    ]


def test_random_stream_pickles_with_full_state():
    rng = _derive_rng(3, "dma-stall")
    [rng.random() for _ in range(100)]  # advance mid-stream
    clone = pickle.loads(pickle.dumps(rng))
    assert [clone.random() for _ in range(50)] == [
        rng.random() for _ in range(50)
    ], "pickled RNG stream diverged — checkpoints would not be bit-identical"


def test_chaos_session_streams_survive_pickling():
    spec = "drop-fault:prob=0.5;fault-latency:prob=0.5,mult=2"
    session = ChaosSession(parse_chaos_spec(spec, seed=5))
    for _ in range(25):  # advance both streams unevenly
        session.fault_entry_action(0x1000, now=0)
        session.perturb_fault_handling(100, now=0)
    clone = pickle.loads(pickle.dumps(session))
    for _ in range(25):
        assert clone.fault_entry_action(0x2000, now=1) == (
            session.fault_entry_action(0x2000, now=1)
        )
        assert clone.perturb_fault_handling(100, now=1) == (
            session.perturb_fault_handling(100, now=1)
        )
    assert clone.injection_counts() == session.injection_counts()


def test_module_global_random_is_untouched_by_a_run():
    """A full simulation must not consume (or reseed) the process-global
    generator — the behavioural teeth behind the lint test."""
    from repro import GpuUvmSimulator, build_workload, systems

    random.seed(1234)
    probe_before = random.Random(0).random()  # sanity: Random(0) unaffected
    expected = random.getstate()
    workload = build_workload("KCORE", scale="tiny", seed=0)
    config = systems.TO_UE.configure(workload, ratio=0.5)
    GpuUvmSimulator(workload, config).run()
    assert random.getstate() == expected, (
        "simulation consumed the module-global random generator"
    )
    assert random.Random(0).random() == probe_before
