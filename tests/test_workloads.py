"""Tests for the GraphBIG-style workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.graph import generate_rmat
from repro.workloads.registry import (
    IRREGULAR_WORKLOADS,
    SCALES,
    build_workload,
    workload_names,
)
from repro.workloads.regular import REGULAR_SPECS, build_regular

GRAPH = generate_rmat(512, 8, seed=0)


@pytest.fixture(params=sorted(IRREGULAR_WORKLOADS))
def irregular_workload(request):
    return IRREGULAR_WORKLOADS[request.param](GRAPH, page_size=4096)


class TestIrregularCommon:
    def test_has_kernels_and_ops(self, irregular_workload):
        assert irregular_workload.kernels
        assert irregular_workload.num_ops > 0

    def test_core_arrays_allocated(self, irregular_workload):
        vas = irregular_workload.address_space
        for name in ("offsets", "edges", "vprop", "status"):
            assert name in vas

    def test_all_accesses_within_footprint(self, irregular_workload):
        valid = irregular_workload.address_space.all_pages()
        assert irregular_workload.touched_pages() <= valid

    def test_marked_irregular(self, irregular_workload):
        assert irregular_workload.irregular

    def test_touches_shared_property_pages(self, irregular_workload):
        # The scattered destination-property traffic must reach the vprop
        # segment from many blocks (the paper's sharing argument).
        vas = irregular_workload.address_space
        vprop_pages = set(vas["vprop"].page_range(vas.page_shift))
        kernel = max(irregular_workload.kernels, key=lambda k: k.num_blocks)
        sharing = [
            bool(block.pages(vas.page_shift) & vprop_pages)
            for block in kernel.blocks
        ]
        assert sum(sharing) >= max(1, len(sharing) // 2)


class TestBfsSpecifics:
    def test_ttc_level_kernel_count_matches_bfs_depth(self):
        from repro.workloads.bfs import build_bfs_ttc
        from repro.workloads.graph import bfs_levels

        workload = build_bfs_ttc(GRAPH, page_size=4096)
        depth = int(bfs_levels(GRAPH, 0).max()) + 1
        assert len(workload.kernels) == depth

    def test_data_driven_grids_shrink_with_frontier(self):
        from repro.workloads.bfs import build_bfs_tf

        workload = build_bfs_tf(GRAPH, page_size=4096)
        first = workload.kernels[0]
        biggest = max(k.num_blocks for k in workload.kernels)
        # Level 0 has a single-source frontier: minimal grid.
        assert first.num_blocks == 1
        assert biggest >= first.num_blocks

    def test_atomic_variant_has_more_ops(self):
        from repro.workloads.bfs import build_bfs_ta, build_bfs_ttc

        ta = build_bfs_ta(GRAPH, page_size=4096)
        ttc = build_bfs_ttc(GRAPH, page_size=4096)
        assert ta.num_ops > ttc.num_ops


class TestAlgorithms:
    def test_gc_rounds_colour_everything(self):
        from repro.workloads.gc import _coloring_rounds

        rounds = _coloring_rounds(GRAPH)
        coloured = set()
        for winners in rounds:
            for v in winners:
                assert v not in coloured
                coloured.add(int(v))
        assert coloured == set(range(GRAPH.num_vertices))

    def test_gc_independent_winners(self):
        from repro.workloads.gc import _coloring_rounds

        rounds = _coloring_rounds(GRAPH)
        first = set(rounds[0].tolist())
        # Round-1 winners must form an independent set (all vertices are
        # uncoloured in round 1): no edge inside the winner set.
        for v in first:
            assert not any(int(u) in first for u in GRAPH.neighbors(v))

    def test_kcore_peeling_removes_low_degree(self):
        from repro.workloads.kcore import _peeling_rounds

        rounds = _peeling_rounds(GRAPH, k=4)
        degrees = GRAPH.degrees()
        if rounds:
            assert all(degrees[v] < 4 for v in rounds[0])

    def test_sssp_rounds_start_at_source(self):
        from repro.workloads.sssp import _sssp_rounds

        rounds = _sssp_rounds(GRAPH, source=0)
        assert list(rounds[0]) == [0]

    def test_pr_iterations_scale_ops(self):
        from repro.workloads.pagerank import build_pagerank

        one = build_pagerank(GRAPH, iterations=1, page_size=4096)
        two = build_pagerank(GRAPH, iterations=2, page_size=4096)
        assert two.num_ops == pytest.approx(2 * one.num_ops, rel=0.01)

    def test_bc_has_forward_and_backward_phases(self):
        from repro.workloads.bc import build_bc

        workload = build_bc(GRAPH, page_size=4096)
        names = [k.name for k in workload.kernels]
        assert any(n.startswith("BC-FWD") for n in names)
        assert any(n.startswith("BC-BWD") for n in names)


class TestRegular:
    def test_all_specs_build(self):
        for name in REGULAR_SPECS:
            workload = build_regular(name, num_blocks=8, page_size=4096)
            assert not workload.irregular
            assert workload.num_ops > 0

    def test_tiles_mostly_private(self):
        workload = build_regular("GM", num_blocks=8, page_size=4096)
        shift = workload.address_space.page_shift
        kernel = workload.kernels[0]
        page_sets = [b.pages(shift) for b in kernel.blocks]
        # GM has no halo: tiles of different blocks share only constants.
        overlap = page_sets[0] & page_sets[4]
        assert len(overlap) <= 1

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            build_regular("NOPE")


class TestRegistry:
    def test_workload_names(self):
        assert len(workload_names("irregular")) == 11
        assert len(workload_names("regular")) == 6
        with pytest.raises(WorkloadError):
            workload_names("weird")

    def test_build_workload_cached(self):
        a = build_workload("KCORE", scale="tiny")
        b = build_workload("KCORE", scale="tiny")
        assert a is b

    def test_scale_sets_page_size_and_hint(self):
        workload = build_workload("KCORE", scale="tiny")
        assert workload.address_space.page_size == SCALES["tiny"].page_size
        assert workload.num_sms_hint == SCALES["tiny"].num_sms

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("FFT", scale="tiny")

    def test_unknown_scale_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("PR", scale="galactic")

    def test_paper_scale_uses_table1_page_size(self):
        assert SCALES["paper"].page_size == 64 * 1024
        assert SCALES["paper"].half_memory_ratio == 0.5
