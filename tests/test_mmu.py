"""Unit tests for the MMU translation path."""

import pytest

from repro.gpu.config import GpuConfig
from repro.vm.mmu import GpuMmu
from repro.vm.page_table import PageTable


@pytest.fixture
def mmu():
    return GpuMmu(GpuConfig(num_sms=2), PageTable())


def test_resident_page_walk_then_tlb_hits(mmu):
    mmu.page_table.map(5, 0)
    first = mmu.translate(5, sm_id=0, now=0)
    assert first.resident and first.level == "walk"
    second = mmu.translate(5, sm_id=0, now=1000)
    assert second.resident and second.level == "l1"
    assert second.latency < first.latency


def test_l2_tlb_shared_across_sms(mmu):
    mmu.page_table.map(5, 0)
    mmu.translate(5, sm_id=0, now=0)          # fills L1(0) + L2
    result = mmu.translate(5, sm_id=1, now=10)  # misses L1(1), hits L2
    assert result.level == "l2"


def test_nonresident_page_faults(mmu):
    result = mmu.translate(9, sm_id=0, now=0)
    assert not result.resident
    assert result.level == "walk"
    assert mmu.faults_detected == 1


def test_fault_does_not_fill_tlbs(mmu):
    mmu.translate(9, sm_id=0, now=0)
    mmu.page_table.map(9, 0)
    result = mmu.translate(9, sm_id=0, now=100)
    assert result.level == "walk"  # still had to walk


def test_eviction_shootdown_via_version(mmu):
    mmu.page_table.map(5, 0)
    mmu.translate(5, sm_id=0, now=0)
    mmu.page_table.unmap(5)  # bumps version
    result = mmu.translate(5, sm_id=0, now=100)
    assert not result.resident


def test_explicit_invalidate(mmu):
    mmu.page_table.map(5, 0)
    mmu.translate(5, sm_id=0, now=0)
    mmu.invalidate(5)
    # Version unchanged but the entries are gone -> walk again.
    result = mmu.translate(5, sm_id=0, now=10)
    assert result.level == "walk"


def test_latency_ordering(mmu):
    mmu.page_table.map(5, 0)
    walk = mmu.translate(5, 0, 0).latency
    mmu.l1_tlbs[0].invalidate(5)
    l2 = mmu.translate(5, 0, 10).latency
    l1 = mmu.translate(5, 0, 20).latency
    assert l1 < l2 < walk
