"""Invariant checker and watchdog: healthy runs pass, doctored state raises."""

import pytest

from repro import GpuUvmSimulator, build_workload, systems
from repro.errors import InvariantViolation, SimulationStalledError
from repro.invariants import InvariantChecker, Watchdog
from repro.sim.engine import Engine


# ---------------------------------------------------------------------------
# Stub components: minimal objects satisfying the checker's protocol, so
# each invariant can be violated surgically without a full simulator.
# ---------------------------------------------------------------------------
class StubMemory:
    def __init__(
        self,
        resident=(),
        free=(),
        capacity=8,
        pinned=(),
        unlimited=False,
    ):
        self._resident = frozenset(resident)
        self._free = tuple(free)
        self.capacity = capacity
        self._pinned = frozenset(pinned)
        self.unlimited = unlimited

    def resident_set(self):
        return self._resident

    def free_frame_ids(self):
        return self._free

    def pinned_pages(self):
        return self._pinned


class StubTable:
    def __init__(self, frame_map):
        self._map = dict(frame_map)

    def resident_set(self):
        return frozenset(self._map)

    def frame_map(self):
        return dict(self._map)

    def is_resident(self, page):
        return page in self._map


class StubBuffer:
    def __init__(self, entries=0, capacity=16, peak=0, total=0, duplicated=0):
        self._entries = entries
        self.capacity = capacity
        self.peak_occupancy = peak
        self.total_faults = total
        self.chaos_duplicated = duplicated

    def __len__(self):
        return self._entries


class StubRuntime:
    def __init__(
        self,
        busy=False,
        open_batch=None,
        remaining=0,
        waiting=(),
        pending=0,
        buffer=None,
    ):
        self.busy = busy
        self.open_batch_index = open_batch
        self.remaining_arrivals = remaining
        self._waiting = frozenset(waiting)
        self.pending_frame_count = pending
        self.fault_buffer = buffer if buffer is not None else StubBuffer()

    def waiting_pages(self):
        return self._waiting


def checker(memory, table, runtime=None):
    return InvariantChecker(memory=memory, page_table=table, runtime=runtime)


def healthy():
    """Two resident pages, two free frames, four in flight."""
    memory = StubMemory(resident=(0x1000, 0x2000), free=(5, 6), capacity=8)
    table = StubTable({0x1000: 0, 0x2000: 1})
    runtime = StubRuntime(buffer=StubBuffer(entries=2, total=5, peak=3))
    return memory, table, runtime


class TestInvariantChecker:
    def test_healthy_state_passes(self):
        memory, table, runtime = healthy()
        chk = checker(memory, table, runtime)
        chk.check(where="test")
        assert chk.checks_run == 1

    def test_residency_disagreement(self):
        memory = StubMemory(resident=(0x1000,), free=(1,), capacity=2)
        table = StubTable({0x1000: 0, 0x2000: 1})
        with pytest.raises(InvariantViolation, match="residency-agreement"):
            checker(memory, table).check()

    def test_duplicate_frames(self):
        memory = StubMemory(resident=(0x1000, 0x2000), free=(), capacity=2)
        table = StubTable({0x1000: 0, 0x2000: 0})
        with pytest.raises(InvariantViolation, match="unique-frames"):
            checker(memory, table).check()

    def test_mapped_frame_on_free_list(self):
        memory = StubMemory(resident=(0x1000,), free=(0,), capacity=2)
        table = StubTable({0x1000: 0})
        with pytest.raises(InvariantViolation, match="unique-frames"):
            checker(memory, table).check()

    def test_frame_overcommit(self):
        memory = StubMemory(resident=(0x1000, 0x2000), free=(2, 3), capacity=3)
        table = StubTable({0x1000: 0, 0x2000: 1})
        with pytest.raises(InvariantViolation, match="frame-accounting"):
            checker(memory, table).check()

    def test_in_flight_frames_allowed_mid_run_but_not_at_quiescence(self):
        memory = StubMemory(resident=(0x1000,), free=(1,), capacity=3)
        table = StubTable({0x1000: 0})
        chk = checker(memory, table)
        chk.check()  # one frame in flight: fine mid-run
        with pytest.raises(InvariantViolation, match="in flight"):
            chk.check(quiescent=True)

    def test_pending_frames_exceed_in_flight(self):
        memory = StubMemory(resident=(0x1000,), free=(1,), capacity=3)
        table = StubTable({0x1000: 0})
        runtime = StubRuntime(pending=2)  # only 1 frame is unaccounted
        with pytest.raises(InvariantViolation, match="pending"):
            checker(memory, table, runtime).check()

    def test_pinned_page_evicted(self):
        memory = StubMemory(
            resident=(0x1000,), free=(1,), capacity=2, pinned=(0x9000,)
        )
        table = StubTable({0x1000: 0})
        with pytest.raises(InvariantViolation, match="pinned"):
            checker(memory, table).check()

    def test_batch_pairing_busy_without_batch(self):
        memory, table, _ = healthy()
        runtime = StubRuntime(busy=True, open_batch=None)
        with pytest.raises(InvariantViolation, match="batch-pairing"):
            checker(memory, table, runtime).check()

    def test_negative_arrivals(self):
        memory, table, _ = healthy()
        runtime = StubRuntime(busy=True, open_batch=0, remaining=-1)
        with pytest.raises(InvariantViolation, match="negative"):
            checker(memory, table, runtime).check()

    def test_idle_with_arrivals_outstanding(self):
        memory, table, _ = healthy()
        runtime = StubRuntime(busy=False, remaining=3)
        with pytest.raises(InvariantViolation, match="arrivals outstanding"):
            checker(memory, table, runtime).check()

    def test_sleeping_waiters(self):
        memory, table, _ = healthy()
        runtime = StubRuntime(waiting=(0x1000,))  # 0x1000 is resident
        with pytest.raises(InvariantViolation, match="no-sleeping-waiters"):
            checker(memory, table, runtime).check()

    def test_fault_buffer_over_capacity(self):
        memory, table, _ = healthy()
        runtime = StubRuntime(buffer=StubBuffer(entries=20, capacity=16))
        with pytest.raises(InvariantViolation, match="over capacity"):
            checker(memory, table, runtime).check()

    def test_fault_buffer_counters_inconsistent(self):
        memory, table, _ = healthy()
        runtime = StubRuntime(buffer=StubBuffer(entries=5, total=2))
        with pytest.raises(InvariantViolation, match="counters"):
            checker(memory, table, runtime).check()

    def test_chaos_duplicates_balance_the_counters(self):
        memory, table, _ = healthy()
        runtime = StubRuntime(
            buffer=StubBuffer(entries=5, total=2, duplicated=3)
        )
        checker(memory, table, runtime).check()  # no violation

    def test_violation_names_witnesses(self):
        memory = StubMemory(resident=(0x1000,), free=(1,), capacity=2)
        table = StubTable({0x1000: 0, 0x2000: 1})
        with pytest.raises(InvariantViolation) as excinfo:
            checker(memory, table).check(where="unit test")
        message = str(excinfo.value)
        assert "unit test" in message and "0x2000" in message


class TestEndToEnd:
    @pytest.mark.parametrize(
        "preset", [systems.BASELINE, systems.TO_UE, systems.ETC]
    )
    def test_healthy_systems_pass_invariant_checked_runs(self, preset):
        workload = build_workload("BFS-TTC", scale="tiny", seed=0)
        config = preset.configure(workload, ratio=0.5, check_invariants=True)
        result = GpuUvmSimulator(workload, config).run()
        assert result.extras["invariant_checks"] > 0

    def test_checked_at_batch_boundaries_and_quiescence(self):
        workload = build_workload("KCORE", scale="tiny", seed=0)
        config = systems.BASELINE.configure(
            workload, ratio=0.5, check_invariants=True
        )
        sim = GpuUvmSimulator(workload, config)
        result = sim.run()
        # Begin + end per completed batch, plus the quiescence check (and
        # possibly begins whose drain came up all-stale, opening no batch).
        assert (
            result.extras["invariant_checks"]
            >= 2 * result.batch_stats.num_batches + 1
        )


class TestWatchdog:
    def test_no_progress_detected(self):
        engine = Engine()

        def spin():
            engine.schedule(0, spin)  # same-cycle cascade, clock frozen

        engine.schedule(0, spin)
        engine.watchdog = Watchdog(stall_events=100)
        with pytest.raises(SimulationStalledError, match="stopped advancing"):
            engine.run()

    def test_progress_resets_the_stall_counter(self):
        engine = Engine()
        remaining = [500]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.schedule(1, tick)  # clock advances every event

        engine.schedule(0, tick)
        engine.watchdog = Watchdog(stall_events=100)
        engine.run()  # must not raise
        assert remaining[0] == 0

    def test_wall_clock_budget(self):
        dog = Watchdog(
            wall_budget_seconds=1e-9,
            wall_check_interval=1,
            snapshot=lambda: {"probe": 17},
        )
        dog.tick(0)  # arms the deadline
        with pytest.raises(SimulationStalledError, match="wall-clock") as exc:
            dog.tick(1)
        assert "probe" in str(exc.value)

    def test_snapshot_failure_never_masks_the_stall(self):
        def broken():
            raise RuntimeError("diagnostics down")

        dog = Watchdog(
            wall_budget_seconds=1e-9, wall_check_interval=1, snapshot=broken
        )
        dog.tick(0)
        with pytest.raises(SimulationStalledError, match="wall-clock") as exc:
            dog.tick(1)
        assert "snapshot_error" in str(exc.value)

    def test_invalid_stall_threshold(self):
        with pytest.raises(ValueError):
            Watchdog(stall_events=0)

    def test_simulator_wall_budget_raises_with_diagnostics(self):
        workload = build_workload("BFS-TTC", scale="tiny", seed=0)
        config = systems.BASELINE.configure(workload, ratio=0.5)
        sim = GpuUvmSimulator(workload, config)
        with pytest.raises(SimulationStalledError, match="wall-clock") as exc:
            sim.run(wall_budget_seconds=1e-12)
        # The diagnostic snapshot rides in the message.
        assert "events_processed" in str(exc.value)
