"""Property-based tests for the core data structures."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.stats import Histogram
from repro.uvm.fault_buffer import FaultBuffer, FaultEntry
from repro.uvm.replacement import AccessLru, AgedLru
from repro.vm.address_space import AddressSpace
from repro.vm.page_table import PageTable
from repro.vm.tlb import Tlb


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1))
def test_engine_fires_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1))
def test_histogram_mean_matches_samples(samples):
    hist = Histogram("h", 7)
    for sample in samples:
        hist.record(sample)
    assert abs(hist.mean - sum(samples) / len(samples)) < 1e-9
    assert hist.count == len(samples)
    assert sum(hist.buckets.values()) == len(samples)


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "remove"]),
                  st.integers(min_value=0, max_value=15)),
        max_size=200,
    )
)
def test_access_lru_matches_reference_model(operations):
    """AccessLru behaves exactly like an OrderedDict-based reference."""
    lru = AccessLru()
    reference: OrderedDict[int, None] = OrderedDict()
    for op, page in operations:
        if op == "insert":
            lru.insert(page)
            if page in reference:
                reference.move_to_end(page)
            else:
                reference[page] = None
        elif op == "touch":
            lru.touch(page)
            if page in reference:
                reference.move_to_end(page)
        elif op == "remove" and page in reference:
            lru.remove(page)
            del reference[page]
    assert lru.pages_in_order() == list(reference)


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "touch"]),
                  st.integers(min_value=0, max_value=15)),
        max_size=200,
    )
)
def test_aged_lru_ignores_touches(operations):
    """AgedLru order is determined solely by the insert sequence."""
    lru = AgedLru()
    inserts_only = AgedLru()
    for op, page in operations:
        if op == "insert":
            lru.insert(page)
            inserts_only.insert(page)
        else:
            lru.touch(page)
    assert lru.pages_in_order() == inserts_only.pages_in_order()


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=300))
def test_tlb_never_exceeds_capacity_and_hits_after_fill(pages):
    tlb = Tlb("t", 16, 4)
    for page in pages:
        if not tlb.lookup(page, 0):
            tlb.fill(page, 0)
            assert tlb.lookup(page, 0)
        assert tlb.occupancy <= 16


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=100))
def test_fault_buffer_drain_returns_exactly_what_fit(pages):
    buf = FaultBuffer(16)
    accepted = []
    for page in pages:
        if buf.push(FaultEntry(page, None, 0)):
            accepted.append(page)
    drained = buf.drain()
    assert [e.page for e in drained] == accepted[:16]
    assert buf.empty


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=30),
                  st.integers(min_value=0, max_value=30)),
        max_size=60,
    )
)
def test_page_table_maps_and_unmaps_consistently(pairs):
    pt = PageTable()
    mapped = {}
    for page, frame in pairs:
        if page in mapped:
            freed = pt.unmap(page)
            assert freed == mapped.pop(page)
        else:
            pt.map(page, frame)
            mapped[page] = frame
    assert pt.resident_set() == frozenset(mapped)
    assert pt.unmaps == pt.version


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=5000),
                  st.sampled_from([1, 4, 8, 64])),
        min_size=1,
        max_size=12,
    )
)
def test_address_space_segments_never_overlap(allocs):
    vas = AddressSpace(4096)
    for i, (count, width) in enumerate(allocs):
        vas.allocate(f"seg{i}", count, width)
    segments = vas.segments
    for a in segments:
        for b in segments:
            if a is not b:
                assert a.end <= b.base or b.end <= a.base
    # Page sets of distinct segments are disjoint.
    covered = set()
    for seg in segments:
        pages = set(seg.page_range(vas.page_shift))
        assert not (pages & covered)
        covered |= pages
    assert len(covered) == vas.total_pages
