"""Property-based tests for the core data structures.

The engine section replays randomized event scripts — interleaved
``schedule`` / ``schedule_at`` / ``run(until=)`` / ``run(max_events=)`` /
``step()`` calls with callbacks spawning children — through the two-level
:class:`~repro.sim.Engine` and the reference
:class:`~repro.sim.HeapEngine`, asserting identical traces across
near-window widths down to the pathological ``1``.  This is the proof
obligation behind the fast-path rework (with
``tests/test_equivalence_golden.py`` locking full-simulation output).
"""

import itertools
import random
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, HeapEngine
from repro.sim.stats import Histogram
from repro.uvm.fault_buffer import FaultBuffer, FaultEntry
from repro.uvm.replacement import AccessLru, AgedLru
from repro.vm.address_space import AddressSpace
from repro.vm.page_table import PageTable
from repro.vm.tlb import Tlb


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1))
def test_engine_fires_in_nondecreasing_time_order(engine_cls, delays):
    engine = engine_cls()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


#: Delay palette: heavy same/near-cycle traffic plus a far-future tail
#: beyond the default 4096-cycle near window, so scripts exercise the
#: calendar buckets, the head slot, the far heap, and migration.
DELAY_CHOICES = [0, 0, 1, 1, 2, 3, 7, 17, 64, 300, 1200, 5000, 20000]

#: A script is a sequence of top-level driver operations.
SCRIPT_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("batch"),
            st.lists(st.sampled_from(DELAY_CHOICES), min_size=1, max_size=10),
        ),
        st.tuples(st.just("until"), st.integers(min_value=0, max_value=6000)),
        st.tuples(st.just("max"), st.integers(min_value=1, max_value=40)),
        st.tuples(st.just("step"), st.integers(min_value=1, max_value=5)),
    ),
    min_size=1,
    max_size=10,
)


#: Hard cap on events spawned per script replay.  Each fired event
#: spawns ``randint(0, 2)`` children — mean exactly 1, a *critical*
#: branching process whose total progeny is heavy-tailed — so without a
#: cap an unlucky example runs for minutes.  The cap is keyed off the
#: deterministic id counter, so both engine replays truncate the same
#: spawn tree at the same node and traces stay comparable.
_SPAWN_CAP = 2000


def _apply_script(engine, ops, spawn_seed: int) -> list:
    """Apply a script to ``engine``; return the full observable trace.

    All randomness derives from ``spawn_seed`` plus the firing event's
    id — never from state shared between two engine replays — so two
    equivalent engines see byte-identical decision streams and any
    divergence surfaces as a trace mismatch.
    """
    ids = itertools.count()
    trace: list = []

    def spawn(eid: int):
        def fire():
            trace.append((eid, engine.now))
            rng = random.Random((spawn_seed << 20) ^ eid)
            for _ in range(rng.randint(0, 2)):
                delay = rng.choice(DELAY_CHOICES)
                child = next(ids)
                if child >= _SPAWN_CAP:
                    continue
                if rng.random() < 0.8:
                    engine.schedule(delay, spawn(child))
                else:
                    engine.schedule_at(engine.now + delay, spawn(child))

        return fire

    for op, arg in ops:
        if op == "batch":
            for delay in arg:
                engine.schedule(delay, spawn(next(ids)))
        elif op == "until":
            engine.run(until=engine.now + arg)
        elif op == "max":
            engine.run(max_events=arg)
        else:
            for _ in range(arg):
                engine.step()
        trace.append(("checkpoint", engine.now, engine.pending_events))
    engine.run()
    return trace


@settings(max_examples=60, deadline=None)
@given(
    ops=SCRIPT_OPS,
    spawn_seed=st.integers(min_value=0, max_value=2**20),
    near_window=st.sampled_from([1, 3, 64, 4096, 100_000]),
)
def test_two_level_engine_replays_heap_trace(ops, spawn_seed, near_window):
    reference = HeapEngine()
    expected = _apply_script(reference, ops, spawn_seed)
    optimized = Engine(near_window=near_window)
    assert _apply_script(optimized, ops, spawn_seed) == expected
    assert optimized.now == reference.now
    assert optimized.events_processed == reference.events_processed
    assert optimized.pending_events == reference.pending_events == 0


@pytest.mark.parametrize("engine_cls", [Engine, HeapEngine])
@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=150))
def test_fifo_within_cycle_matches_schedule_order(engine_cls, times):
    engine = engine_cls()
    order = []
    for i, t in enumerate(times):
        engine.schedule_at(t, lambda t=t, i=i: order.append((t, i)))
    engine.run()
    # sorted() is stable: equal times keep schedule order.
    expected = [(t, i) for i, t in sorted(enumerate(times), key=lambda e: e[1])]
    assert order == expected


class _TaggedEvent:
    __slots__ = ("kind",)

    def __init__(self, tag: int):
        self.kind = f"tagged.{tag}"

    def __call__(self):
        pass


@settings(max_examples=25, deadline=None)
@given(
    delays=st.lists(st.sampled_from(DELAY_CHOICES), min_size=2, max_size=40),
    cut=st.integers(min_value=1, max_value=39),
)
def test_state_snapshots_agree_after_bounded_run(delays, cut):
    """Both engines preview the same next events mid-run."""
    snapshots = []
    for engine_cls in (Engine, HeapEngine):
        engine = engine_cls()
        for i, delay in enumerate(delays):
            engine.schedule(delay, _TaggedEvent(i))
        engine.run(max_events=min(cut, len(delays) - 1))
        snapshots.append(engine.state_snapshot())
    assert snapshots[0] == snapshots[1]


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1))
def test_histogram_mean_matches_samples(samples):
    hist = Histogram("h", 7)
    for sample in samples:
        hist.record(sample)
    assert abs(hist.mean - sum(samples) / len(samples)) < 1e-9
    assert hist.count == len(samples)
    assert sum(hist.buckets.values()) == len(samples)


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "remove"]),
                  st.integers(min_value=0, max_value=15)),
        max_size=200,
    )
)
def test_access_lru_matches_reference_model(operations):
    """AccessLru behaves exactly like an OrderedDict-based reference."""
    lru = AccessLru()
    reference: OrderedDict[int, None] = OrderedDict()
    for op, page in operations:
        if op == "insert":
            lru.insert(page)
            if page in reference:
                reference.move_to_end(page)
            else:
                reference[page] = None
        elif op == "touch":
            lru.touch(page)
            if page in reference:
                reference.move_to_end(page)
        elif op == "remove" and page in reference:
            lru.remove(page)
            del reference[page]
    assert lru.pages_in_order() == list(reference)


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "touch"]),
                  st.integers(min_value=0, max_value=15)),
        max_size=200,
    )
)
def test_aged_lru_ignores_touches(operations):
    """AgedLru order is determined solely by the insert sequence."""
    lru = AgedLru()
    inserts_only = AgedLru()
    for op, page in operations:
        if op == "insert":
            lru.insert(page)
            inserts_only.insert(page)
        else:
            lru.touch(page)
    assert lru.pages_in_order() == inserts_only.pages_in_order()


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=300))
def test_tlb_never_exceeds_capacity_and_hits_after_fill(pages):
    tlb = Tlb("t", 16, 4)
    for page in pages:
        if not tlb.lookup(page, 0):
            tlb.fill(page, 0)
            assert tlb.lookup(page, 0)
        assert tlb.occupancy <= 16


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=100))
def test_fault_buffer_drain_returns_exactly_what_fit(pages):
    buf = FaultBuffer(16)
    accepted = []
    for page in pages:
        if buf.push(FaultEntry(page, None, 0)):
            accepted.append(page)
    drained = buf.drain()
    assert [e.page for e in drained] == accepted[:16]
    assert buf.empty


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=30),
                  st.integers(min_value=0, max_value=30)),
        max_size=60,
    )
)
def test_page_table_maps_and_unmaps_consistently(pairs):
    pt = PageTable()
    mapped = {}
    for page, frame in pairs:
        if page in mapped:
            freed = pt.unmap(page)
            assert freed == mapped.pop(page)
        else:
            pt.map(page, frame)
            mapped[page] = frame
    assert pt.resident_set() == frozenset(mapped)
    assert pt.unmaps == pt.version


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=5000),
                  st.sampled_from([1, 4, 8, 64])),
        min_size=1,
        max_size=12,
    )
)
def test_address_space_segments_never_overlap(allocs):
    vas = AddressSpace(4096)
    for i, (count, width) in enumerate(allocs):
        vas.allocate(f"seg{i}", count, width)
    segments = vas.segments
    for a in segments:
        for b in segments:
            if a is not b:
                assert a.end <= b.base or b.end <= a.base
    # Page sets of distinct segments are disjoint.
    covered = set()
    for seg in segments:
        pages = set(seg.page_range(vas.page_shift))
        assert not (pages & covered)
        covered |= pages
    assert len(covered) == vas.total_pages
