"""Unit tests for trace containers and builders."""

import pytest

from repro.errors import WorkloadError
from repro.gpu.warp import WarpOp
from repro.vm.address_space import AddressSpace
from repro.workloads.trace import (
    BlockTrace,
    KernelTrace,
    WarpOpsBuilder,
    Workload,
    group_warps_into_blocks,
    merge_kernel_ops,
    vertex_warps,
)


class TestWarpOpsBuilder:
    def test_access_emits_op(self):
        builder = WarpOpsBuilder()
        builder.access([100, 200])
        ops = builder.build()
        assert len(ops) == 1
        assert ops[0].addresses == (100, 200)

    def test_empty_access_skipped(self):
        builder = WarpOpsBuilder()
        builder.access([])
        assert builder.build() == []

    def test_compute_stretch(self):
        builder = WarpOpsBuilder()
        builder.compute(50)
        ops = builder.build()
        assert ops[0].compute_cycles == 50
        assert ops[0].addresses == ()

    def test_nonpositive_compute_skipped(self):
        builder = WarpOpsBuilder()
        builder.compute(0)
        assert builder.build() == []

    def test_store_flag_propagates(self):
        builder = WarpOpsBuilder()
        builder.access([1], is_store=True)
        assert builder.build()[0].is_store

    def test_jitter_bounded(self):
        builder = WarpOpsBuilder(compute_cycles=10)
        for _ in range(10):
            builder.access([4])
        cycles = [op.compute_cycles for op in builder.build()]
        assert all(10 <= c < 15 for c in cycles)


class TestContainers:
    def make_kernel(self):
        blocks = [
            BlockTrace([[WarpOp(8, (0x1000,))], [WarpOp(8, (0x2000,))]]),
            BlockTrace([[WarpOp(8, (0x1000, 0x3000))]]),
        ]
        return KernelTrace("k", blocks)

    def test_counts(self):
        kernel = self.make_kernel()
        assert kernel.num_blocks == 2
        assert kernel.num_ops == 3
        assert kernel.blocks[0].num_warps == 2

    def test_block_pages(self):
        kernel = self.make_kernel()
        assert kernel.blocks[0].pages(12) == {1, 2}
        assert kernel.blocks[1].pages(12) == {1, 3}

    def test_kernel_pages_union(self):
        assert self.make_kernel().pages(12) == {1, 2, 3}

    def test_workload_requires_kernels(self):
        vas = AddressSpace(4096)
        vas.allocate("a", 10, 4)
        with pytest.raises(WorkloadError):
            Workload("w", vas, [])

    def test_workload_footprint(self):
        vas = AddressSpace(4096)
        vas.allocate("a", 4096, 4)  # 4 pages
        workload = Workload("w", vas, [self.make_kernel()])
        assert workload.footprint_pages == 4
        assert workload.num_ops == 3


class TestHelpers:
    def test_vertex_warps_cover_all_vertices(self):
        warps = vertex_warps(100, threads_per_block=64)
        covered = [v for _, vrange in warps for v in vrange]
        assert covered == list(range(100))
        assert len(warps) == 4  # ceil(100/32)

    def test_vertex_warps_rejects_bad_block(self):
        with pytest.raises(WorkloadError):
            vertex_warps(10, threads_per_block=48)

    def test_group_warps_into_blocks(self):
        warp_ops = [[WarpOp(1, (i,))] for i in range(10)]
        blocks = group_warps_into_blocks(warp_ops, warps_per_block=4)
        assert [b.num_warps for b in blocks] == [4, 4, 2]

    def test_group_rejects_bad_size(self):
        with pytest.raises(WorkloadError):
            group_warps_into_blocks([], 0)

    def test_merge_kernel_ops(self):
        phase1 = [[WarpOp(1, (1,))], [WarpOp(1, (2,))]]
        phase2 = [[WarpOp(1, (3,))]]
        merged = merge_kernel_ops([phase1, phase2])
        assert len(merged) == 2
        assert len(merged[0]) == 2
        assert len(merged[1]) == 1

    def test_merge_empty(self):
        assert merge_kernel_ops([]) == []
