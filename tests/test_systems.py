"""Tests for the named system presets and scale-aware configuration."""

import pytest

from repro import systems
from repro.workloads.registry import SCALES, build_workload


def test_figure11_order():
    names = [p.name for p in systems.FIGURE11_SYSTEMS]
    assert names == [
        "BASELINE",
        "BASELINE+PCIeC",
        "TO",
        "UE",
        "TO+UE",
        "ETC",
    ]


def test_by_name():
    assert systems.by_name("to+ue") is systems.TO_UE
    with pytest.raises(KeyError):
        systems.by_name("warp-drive")


def test_presets_distinguishing_features():
    assert systems.BASELINE.base.eviction == "serialized"
    assert systems.UE.base.eviction == "unobtrusive"
    assert systems.IDEAL_EVICTION.base.eviction == "ideal"
    assert systems.TO.base.to.enabled
    assert not systems.UE.base.to.enabled
    assert systems.TO_UE.base.to.enabled
    assert systems.TO_UE.base.eviction == "unobtrusive"
    assert systems.ETC.base.etc.enabled
    assert systems.BASELINE_PCIE_COMPRESSION.base.uvm.pcie_compression
    assert systems.NO_PREFETCH.base.uvm.prefetcher == "none"
    assert systems.FORCED_OVERSUBSCRIPTION.base.forced_oversubscription


class TestConfigure:
    def test_oversubscription_sizes_memory(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload, ratio=0.5)
        assert config.uvm.frames == workload.footprint_pages // 2

    def test_full_ratio_unlimited(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload, ratio=1.0)
        assert config.uvm.gpu_memory_bytes is None

    def test_page_size_inherited_from_workload(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload, ratio=0.5)
        assert config.uvm.page_size == SCALES["tiny"].page_size

    def test_time_scaling_preserves_fht_to_transfer_ratio(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload, ratio=0.5)
        fht_pages = config.uvm.fault_handling_cycles / config.uvm.h2d_cycles_per_page()
        paper_fht_pages = 20_000 / 4161
        assert fht_pages == pytest.approx(paper_fht_pages, rel=0.05)

    def test_time_scaling_preserves_dram_ratio(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload, ratio=0.5)
        scale = config.time_scale
        assert config.gpu.memory_latency_cycles == pytest.approx(
            200 * scale, abs=1
        )

    def test_num_sms_from_hint(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload, ratio=0.5)
        assert config.gpu.num_sms == SCALES["tiny"].num_sms

    def test_fault_handling_override_in_paper_units(self):
        workload = build_workload("KCORE", scale="tiny")
        c20 = systems.BASELINE.configure(workload, ratio=0.5)
        c50 = systems.BASELINE.configure(
            workload, ratio=0.5, fault_handling_cycles=50_000
        )
        assert c50.uvm.fault_handling_cycles == pytest.approx(
            2.5 * c20.uvm.fault_handling_cycles, rel=0.05
        )

    def test_rejects_nonpositive_ratio(self):
        workload = build_workload("KCORE", scale="tiny")
        with pytest.raises(Exception):
            systems.BASELINE.configure(workload, ratio=0.0)
