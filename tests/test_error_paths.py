"""Error taxonomy: context-rich messages, pickling, recovery paths."""

import pickle

import pytest

from repro.errors import (
    CellFailure,
    ConfigError,
    InjectionError,
    InvariantViolation,
    ReproError,
    SimulationError,
    SimulationStalledError,
)
from repro.sim.engine import Engine
from repro.uvm.memory_manager import GpuMemoryManager
from repro.uvm.replacement import AgedLru
from repro.vm.page_table import PageTable


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(InjectionError, ConfigError)
        assert issubclass(InvariantViolation, SimulationError)
        assert issubclass(SimulationStalledError, SimulationError)
        assert issubclass(CellFailure, ReproError)
        for cls in (ConfigError, SimulationError, CellFailure):
            assert issubclass(cls, ReproError)

    def test_context_folded_into_message(self):
        err = SimulationError("page not resident", page="0x4000", frame=3)
        assert str(err) == "page not resident (page=0x4000, frame=3)"
        assert err.context == {"page": "0x4000", "frame": 3}

    def test_context_survives_pickling(self):
        """Worker-process errors cross a pickle boundary; the message —
        context included — must arrive intact."""
        err = SimulationError("boom", batch=7, now=12345)
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == str(err)

    def test_cell_failure_round_trips_through_pickle(self):
        failure = CellFailure(
            "it broke",
            workload="PR",
            system="ETC",
            attempts=3,
            error_type="OSError",
            scale="tiny",
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert str(clone) == str(failure)
        assert "PR/ETC" in failure.summary()


class TestMemoryManagerErrors:
    def test_double_allocate_names_the_page(self):
        mm = GpuMemoryManager(4, AgedLru())
        mm.allocate(0x1000, now=10)
        with pytest.raises(SimulationError, match="0x1000") as excinfo:
            mm.allocate(0x1000, now=20)
        assert excinfo.value.context["allocated_at"] == 10

    def test_allocate_without_free_frame(self):
        mm = GpuMemoryManager(1, AgedLru())
        mm.allocate(0x1000, now=0)
        with pytest.raises(SimulationError, match="evict first"):
            mm.allocate(0x2000, now=1)

    def test_pinned_page_refuses_eviction(self):
        mm = GpuMemoryManager(2, AgedLru())
        mm.allocate(0x1000, now=0)
        mm.pin(0x1000)
        with pytest.raises(SimulationError, match="pinned"):
            mm.evict(0x1000, now=5)
        mm.unpin(0x1000)
        assert mm.evict(0x1000, now=5) == 5  # lifetime

    def test_evicting_non_resident_page(self):
        mm = GpuMemoryManager(2, AgedLru())
        with pytest.raises(SimulationError, match="not resident"):
            mm.evict(0x1000, now=0)


class TestPageTableErrors:
    def test_double_map_names_both_frames(self):
        table = PageTable()
        table.map(0x1000, 0)
        with pytest.raises(SimulationError) as excinfo:
            table.map(0x1000, 1)
        assert excinfo.value.context["existing_frame"] == 0
        assert excinfo.value.context["new_frame"] == 1

    def test_unmap_missing_page(self):
        table = PageTable()
        with pytest.raises(SimulationError, match="0x2000"):
            table.unmap(0x2000)

    def test_frame_of_missing_page(self):
        table = PageTable()
        with pytest.raises(SimulationError, match="not resident"):
            table.frame_of(0x3000)


class TestEngineRecovery:
    def test_reentrancy_latch_cleared_after_exception(self):
        """Regression: ``run()`` must release its reentrancy latch in a
        ``finally`` — an engine whose event handler raised is still
        usable (the experiment harness reuses the process after a failed
        cell)."""
        engine = Engine()

        def explode():
            raise SimulationError("handler died")

        engine.schedule(1, explode)
        with pytest.raises(SimulationError, match="handler died"):
            engine.run()

        ran = []
        engine.schedule(1, lambda: ran.append(True))
        engine.run()  # must not raise "engine.run() is not reentrant"
        assert ran == [True]

    def test_watchdog_exception_also_releases_the_latch(self):
        from repro.invariants import Watchdog

        engine = Engine()

        def spin():
            engine.schedule(0, spin)

        engine.schedule(0, spin)
        engine.watchdog = Watchdog(stall_events=10)
        with pytest.raises(SimulationStalledError):
            engine.run()
        engine.watchdog = None
        # The spin event is still queued; a bounded run drains some of it
        # without tripping the (removed) watchdog or the latch.
        engine.run(max_events=5)

    def test_batch_begin_while_busy_is_contextual(self):
        """The runtime's reentrancy error names the open batch and clock —
        enough to debug a scheduling bug from the message alone."""
        from repro import GpuUvmSimulator, build_workload, systems
        from repro.errors import IllegalTransition

        workload = build_workload("BFS-TTC", scale="tiny", seed=0)
        config = systems.BASELINE.configure(workload, ratio=0.5)
        sim = GpuUvmSimulator(workload, config)
        runtime = sim.runtime
        runtime.machine.state = "migrate"  # simulate a mid-batch state
        with pytest.raises(SimulationError, match="begin") as excinfo:
            runtime._begin_batch()
        assert isinstance(excinfo.value, IllegalTransition)
        assert "now=" in str(excinfo.value)
        assert excinfo.value.machine_snapshot["state"] == "migrate"
        runtime.machine.state = "idle"


class TestFaultBufferAccounting:
    def test_overflow_keeps_counters_consistent(self):
        from repro.uvm.fault_buffer import FaultBuffer, FaultEntry

        buffer = FaultBuffer(capacity=2)
        assert buffer.push(FaultEntry(0x1000, None, 0))
        assert buffer.push(FaultEntry(0x2000, None, 1))
        assert not buffer.push(FaultEntry(0x3000, None, 2))  # full: dropped
        assert buffer.total_faults == 3
        assert buffer.overflow_faults == 1
        assert len(buffer) == 2
        assert buffer.peak_occupancy == 2

    def test_replay_push_bypasses_chaos_drops(self):
        from repro.chaos import ChaosSession
        from repro.chaos.config import parse_chaos_spec
        from repro.uvm.fault_buffer import FaultBuffer, FaultEntry

        buffer = FaultBuffer(capacity=8)
        buffer.chaos = ChaosSession(
            parse_chaos_spec("drop-fault:prob=1.0", seed=0)
        )
        assert not buffer.push(FaultEntry(0x1000, None, 0))  # always dropped
        assert buffer.push(FaultEntry(0x1000, None, 1), replay=True)
        assert buffer.chaos_dropped == 1
        assert len(buffer) == 1

    def test_zero_capacity_rejected(self):
        from repro.uvm.fault_buffer import FaultBuffer

        with pytest.raises(ConfigError):
            FaultBuffer(capacity=0)
