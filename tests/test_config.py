"""Unit tests for the Table 1 configuration objects."""

import pytest

from repro.errors import ConfigError
from repro.gpu.config import (
    EtcConfig,
    GpuConfig,
    SimConfig,
    ToConfig,
    UvmConfig,
)


class TestGpuConfig:
    def test_table1_defaults(self):
        gpu = GpuConfig()
        assert gpu.num_sms == 16
        assert gpu.threads_per_sm == 1024
        assert gpu.register_file_bytes_per_sm == 256 * 1024
        assert gpu.l1_tlb_entries == 64
        assert gpu.l2_tlb_entries == 1024
        assert gpu.l2_tlb_assoc == 32
        assert gpu.memory_latency_cycles == 200
        assert gpu.max_concurrent_walks == 64

    def test_derived_quantities(self):
        gpu = GpuConfig()
        assert gpu.max_warps_per_sm == 32
        assert gpu.registers_per_sm == 65536

    def test_rejects_bad_sm_count(self):
        with pytest.raises(ConfigError):
            GpuConfig(num_sms=0)

    def test_rejects_nonwarp_thread_count(self):
        with pytest.raises(ConfigError):
            GpuConfig(threads_per_sm=1000)

    def test_rejects_bad_tlb_geometry(self):
        with pytest.raises(ConfigError):
            GpuConfig(l2_tlb_entries=1000, l2_tlb_assoc=32)


class TestUvmConfig:
    def test_table1_defaults(self):
        uvm = UvmConfig()
        assert uvm.page_size == 64 * 1024
        assert uvm.fault_buffer_entries == 1024
        assert uvm.fault_handling_cycles == 20_000
        assert uvm.pcie_h2d_gbps == pytest.approx(15.75)

    def test_page_transfer_time_matches_bandwidth(self):
        uvm = UvmConfig()
        # 64 KB over 15.75 GB/s is ~4161 ns = ~4161 cycles at 1 GHz.
        assert uvm.h2d_cycles_per_page() == pytest.approx(4161, abs=2)

    def test_d2h_faster_than_h2d_by_default(self):
        uvm = UvmConfig()
        assert uvm.d2h_cycles_per_page() < uvm.h2d_cycles_per_page()

    def test_page_shift(self):
        assert UvmConfig().page_shift == 16
        assert UvmConfig(page_size=4096).page_shift == 12

    def test_frames(self):
        uvm = UvmConfig(gpu_memory_bytes=640 * 1024)
        assert uvm.frames == 10
        assert UvmConfig().frames is None

    def test_rejects_non_power_of_two_pages(self):
        with pytest.raises(ConfigError):
            UvmConfig(page_size=60_000)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            UvmConfig(replacement_policy="mru")

    def test_rejects_unknown_prefetcher(self):
        with pytest.raises(ConfigError):
            UvmConfig(prefetcher="oracle")

    def test_rejects_submarine_memory(self):
        with pytest.raises(ConfigError):
            UvmConfig(gpu_memory_bytes=1024)


class TestSimConfig:
    def test_default_is_serialized_eviction(self):
        assert SimConfig().eviction == "serialized"

    def test_rejects_unknown_eviction(self):
        with pytest.raises(ConfigError):
            SimConfig(eviction="magic")

    def test_with_memory_bytes(self):
        cfg = SimConfig().with_memory_bytes(2 * 1024 * 1024)
        assert cfg.uvm.gpu_memory_bytes == 2 * 1024 * 1024

    def test_with_oversubscription_half(self):
        cfg = SimConfig().with_oversubscription(100 * 64 * 1024, 0.5)
        assert cfg.uvm.frames == 50

    def test_with_oversubscription_full_means_unlimited(self):
        cfg = SimConfig().with_oversubscription(100 * 64 * 1024, 1.0)
        assert cfg.uvm.gpu_memory_bytes is None

    def test_with_oversubscription_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            SimConfig().with_oversubscription(1024, 0)

    def test_oversubscription_floors_to_one_page(self):
        cfg = SimConfig().with_oversubscription(64 * 1024, 0.1)
        assert cfg.uvm.frames == 1


class TestToEtcConfigs:
    def test_to_defaults_disabled(self):
        to = ToConfig()
        assert not to.enabled
        assert to.monitor_period_cycles == 100_000
        assert to.lifetime_drop_threshold == pytest.approx(0.20)

    def test_etc_defaults(self):
        etc = EtcConfig()
        assert not etc.enabled
        assert not etc.proactive_eviction
        assert etc.throttle_fraction == pytest.approx(0.5)
