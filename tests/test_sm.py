"""Unit tests for the SM's block-slot management and context switching."""

import pytest

from repro.errors import SimulationError
from repro.gpu.config import GpuConfig
from repro.gpu.context import ContextCostModel
from repro.gpu.occupancy import KernelResources
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.thread_block import BlockState, ThreadBlock
from repro.gpu.warp import Warp, WarpOp, WarpState
from repro.sim.engine import Engine


def make_block(block_id=0, num_warps=2):
    warps = [Warp(i, [WarpOp(8, (i * 4096,))]) for i in range(num_warps)]
    return ThreadBlock(block_id, warps)


def make_sm(active_limit=2, allow=lambda: True, forced=False):
    engine = Engine()
    scheduled = []

    def schedule_warp(warp, delay):
        warp.state = WarpState.RUNNING
        scheduled.append((warp, delay))

    sm = StreamingMultiprocessor(
        0,
        engine,
        active_limit,
        ContextCostModel(GpuConfig()),
        KernelResources(),
        schedule_warp,
        allow,
        forced,
    )
    return engine, sm, scheduled


def stall_block(block):
    for warp in block.warps:
        warp.stall_on([99 + warp.warp_id], 0, 0)


class TestDispatch:
    def test_active_dispatch_schedules_warps(self):
        _engine, sm, scheduled = make_sm()
        block = make_block()
        sm.dispatch(block, active=True)
        assert block.state is BlockState.ACTIVE
        assert len(scheduled) == 2

    def test_inactive_dispatch_suspends_warps(self):
        _engine, sm, scheduled = make_sm()
        block = make_block()
        sm.dispatch(block, active=False)
        assert block.state is BlockState.INACTIVE
        assert scheduled == []
        assert all(w.state is WarpState.SUSPENDED for w in block.warps)

    def test_active_slots_enforced(self):
        _engine, sm, _ = make_sm(active_limit=1)
        sm.dispatch(make_block(0), active=True)
        with pytest.raises(SimulationError):
            sm.dispatch(make_block(1), active=True)

    def test_double_dispatch_rejected(self):
        _engine, sm, _ = make_sm()
        block = make_block()
        sm.dispatch(block, active=True)
        with pytest.raises(SimulationError):
            sm.dispatch(block, active=True)


class TestContextSwitch:
    def test_switch_swaps_stalled_active_with_ready_inactive(self):
        engine, sm, scheduled = make_sm(active_limit=1)
        active = make_block(0)
        extra = make_block(1)
        sm.dispatch(active, active=True)
        sm.dispatch(extra, active=False)
        scheduled.clear()

        stall_block(active)
        assert sm.try_context_switch(active)
        assert active.state is BlockState.INACTIVE
        assert extra.state is BlockState.SWITCHING
        engine.run()
        assert extra.state is BlockState.ACTIVE
        assert len(scheduled) == 2  # extra's warps started
        assert sm.context_switches == 1
        assert sm.switch_cycles_spent > 0

    def test_switch_sets_issue_stall_window(self):
        engine, sm, _ = make_sm(active_limit=1)
        active, extra = make_block(0), make_block(1)
        sm.dispatch(active, active=True)
        sm.dispatch(extra, active=False)
        stall_block(active)
        sm.try_context_switch(active)
        assert sm.switch_busy_until > engine.now

    def test_no_switch_without_ready_inactive(self):
        _engine, sm, _ = make_sm(active_limit=1)
        active = make_block(0)
        sm.dispatch(active, active=True)
        stall_block(active)
        assert not sm.try_context_switch(active)

    def test_no_switch_when_disallowed(self):
        _engine, sm, _ = make_sm(active_limit=1, allow=lambda: False)
        active, extra = make_block(0), make_block(1)
        sm.dispatch(active, active=True)
        sm.dispatch(extra, active=False)
        stall_block(active)
        assert not sm.try_context_switch(active)

    def test_on_warp_stalled_triggers_switch(self):
        engine, sm, _ = make_sm(active_limit=1)
        active, extra = make_block(0), make_block(1)
        sm.dispatch(active, active=True)
        sm.dispatch(extra, active=False)
        stall_block(active)
        sm.on_warp_stalled(active.warps[-1])
        engine.run()
        assert extra.state is BlockState.ACTIVE

    def test_stalled_inactive_block_not_switched_in(self):
        _engine, sm, _ = make_sm(active_limit=1)
        active, extra = make_block(0), make_block(1)
        sm.dispatch(active, active=True)
        sm.dispatch(extra, active=False)
        stall_block(extra)  # the extra block is itself waiting on pages
        stall_block(active)
        assert not sm.try_context_switch(active)


class TestBlockReady:
    def test_ready_block_fills_free_slot(self):
        engine, sm, scheduled = make_sm(active_limit=2)
        block = make_block()
        sm.dispatch(block, active=False)
        scheduled.clear()
        sm.on_block_ready(block)
        engine.run()
        assert block.state is BlockState.ACTIVE
        assert len(scheduled) == 2

    def test_ready_block_preempts_fully_stalled_active(self):
        engine, sm, _ = make_sm(active_limit=1)
        active, extra = make_block(0), make_block(1)
        sm.dispatch(active, active=True)
        sm.dispatch(extra, active=False)
        stall_block(active)
        sm.on_block_ready(extra)
        engine.run()
        assert extra.state is BlockState.ACTIVE
        assert active.state is BlockState.INACTIVE


class TestRetireAndThrottle:
    def test_retire_active_block(self):
        _engine, sm, _ = make_sm()
        block = make_block()
        sm.dispatch(block, active=True)
        sm.retire_block(block)
        assert block.state is BlockState.FINISHED
        assert sm.free_active_slots == 2

    def test_retire_inactive_block(self):
        _engine, sm, _ = make_sm()
        block = make_block()
        sm.dispatch(block, active=False)
        sm.retire_block(block)
        assert block.state is BlockState.FINISHED

    def test_retire_pending_block_rejected(self):
        _engine, sm, _ = make_sm()
        with pytest.raises(SimulationError):
            sm.retire_block(make_block())

    def test_unthrottle_reschedules_parked_warps(self):
        _engine, sm, scheduled = make_sm()
        block = make_block()
        sm.dispatch(block, active=True)
        scheduled.clear()
        sm.set_throttled(True)
        sm.park(block.warps[0])
        sm.set_throttled(False)
        assert len(scheduled) == 1

    def test_set_throttled_idempotent(self):
        _engine, sm, scheduled = make_sm()
        sm.set_throttled(True)
        sm.park(make_block().warps[0])
        sm.set_throttled(True)  # no-op: parked warps stay parked
        assert len(sm.parked_warps) == 1
