"""Hard-kill recovery: a SIGKILLed worker's cell resumes bit-identically.

The satellite contract for the supervised pool, exercised end to end
with *real* subprocesses (no mocks):

* ``kill -9`` lands on a live worker mid-cell (sent by the test, from
  outside the pool, once the cell's first checkpoint is on disk); the
  supervisor notices the death, restarts the slot, and resumes the cell
  from its last checkpoint in the fresh worker.  The final result is
  bit-identical to an uninterrupted golden run — on **both** warp
  backends (``soa`` and ``object``).
* The ``worker-hang`` injector forces the full escalation chain
  (missed heartbeats → SIGTERM, blocked → SIGKILL) and still converges.
* ``worker-slow`` stretches checkpoint boundaries without changing a
  single output bit.
* After any of it: zero orphaned checkpoint files, SIGKILLed workers
  included.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro import systems
from repro.chaos import parse_chaos_spec
from repro.experiments import common
from repro.pool import PoolConfig, SupervisedPool
from repro.simulator import SimulationResult

BACKENDS = ("soa", "object")


@pytest.fixture()
def harness(tmp_path):
    common.clear_run_cache()
    common.reset_cache_stats()
    common.set_cache_dir(tmp_path / "cache")
    common.set_cache_enabled(False)
    yield tmp_path
    common.set_cache_dir(None)
    common.set_cache_enabled(True)
    common.clear_run_cache()


def _spec(backend="soa", **kwargs):
    return common.RunSpec(
        "KCORE", preset=systems.BASELINE, scale="tiny", backend=backend, **kwargs
    ).resolved()


def _fields(result):
    return (
        result.workload,
        result.exec_cycles,
        result.events_processed,
        result.faults_raised,
        result.migrated_pages,
        result.prefetched_pages,
        result.evicted_pages,
        result.context_switches,
        result.batch_stats.num_batches,
        result.batch_stats.mean_batch_pages,
    )


def _golden(backend):
    return common._simulate_spec(_spec(backend=backend))


class TestHardKill:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sigkill_mid_cell_resumes_bit_identical(self, harness, backend):
        """The test itself SIGKILLs the worker subprocess mid-cell."""
        golden = _golden(backend)
        ckpt = harness / f"ckpt-{backend}"
        # worker-slow stretches every batch boundary so the external
        # killer has a generous window between checkpoint writes.
        slow = parse_chaos_spec("worker-slow:prob=1,delay=0.03", seed=1)
        config = PoolConfig(
            workers=1,
            heartbeat=0.05,
            term_grace=0.2,
            backoff_base=0.01,
            checkpoint_dir=str(ckpt),
            chaos=slow,
            breaker_threshold=100,
        )
        pool = SupervisedPool(config)
        killed = {"pid": None}

        def assassin():
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                # Wait for proof the cell is mid-flight: its first
                # checkpoint has landed on disk.
                if any(ckpt.glob("*.ckpt")):
                    slot = pool._slots[0]
                    worker = slot.worker
                    if worker is not None and worker.process.pid:
                        killed["pid"] = worker.process.pid
                        os.kill(worker.process.pid, signal.SIGKILL)
                        return
                time.sleep(0.002)

        with pool:
            thread = threading.Thread(target=assassin, daemon=True)
            thread.start()
            (result,) = pool.run([_spec(backend=backend)])
            thread.join(timeout=30)

        assert killed["pid"] is not None, "the assassin never fired"
        assert isinstance(result, SimulationResult)
        assert _fields(result) == _fields(golden), (
            f"resumed {backend} result diverged from the golden run"
        )
        stats = pool.stats()
        assert stats["crashes"] >= 1, "the SIGKILL must register as a crash"
        assert stats["resumes"] >= 1, "the cell must resume, not restart"
        assert stats["restarts"] >= 1, "the slot must respawn"
        assert not list(ckpt.glob("*")), (
            f"orphaned checkpoint files: {list(ckpt.glob('*'))}"
        )

    def test_chaos_kill_storm_converges(self, harness):
        """Deterministic kill chaos (p<1) always converges bit-identically."""
        golden = _golden("soa")
        ckpt = harness / "storm"
        chaos = parse_chaos_spec("worker-kill:prob=0.6,after=1", seed=11)
        config = PoolConfig(
            workers=1,
            heartbeat=0.05,
            term_grace=0.2,
            backoff_base=0.01,
            checkpoint_dir=str(ckpt),
            chaos=chaos,
            breaker_threshold=100,
        )
        with SupervisedPool(config) as pool:
            (result,) = pool.run([_spec()])
        assert _fields(result) == _fields(golden)
        assert pool.stats()["crashes"] >= 1
        assert not list(ckpt.glob("*"))


class TestEscalation:
    def test_hang_forces_sigkill_escalation(self, harness):
        golden = _golden("soa")
        ckpt = harness / "hang"
        chaos = parse_chaos_spec("worker-hang:prob=0.8,after=3", seed=3)
        config = PoolConfig(
            workers=1,
            heartbeat=0.05,
            miss_budget=4.0,
            term_grace=0.2,
            backoff_base=0.01,
            checkpoint_dir=str(ckpt),
            chaos=chaos,
            breaker_threshold=100,
        )
        with SupervisedPool(config) as pool:
            (result,) = pool.run([_spec()])
        assert _fields(result) == _fields(golden)
        stats = pool.stats()
        assert stats["heartbeat_misses"] >= 1, "hang must be seen as silence"
        assert stats["sigterms"] >= 1 and stats["sigkills"] >= 1, (
            "a hung worker blocks SIGTERM; only SIGKILL removes it"
        )
        assert not list(ckpt.glob("*"))

    def test_deadline_kills_wedged_worker(self, harness):
        golden = _golden("soa")
        ckpt = harness / "deadline"
        # Hang with heartbeats *still flowing* would defeat heartbeat
        # supervision; the hard per-cell deadline is the backstop.  The
        # hang injector silences heartbeats too, so to isolate the
        # deadline path we disable heartbeat supervision entirely.
        chaos = parse_chaos_spec("worker-hang:prob=0.9,after=2", seed=6)
        config = PoolConfig(
            workers=1,
            heartbeat=None,
            cell_deadline=1.0,
            term_grace=0.1,
            backoff_base=0.01,
            checkpoint_dir=str(ckpt),
            chaos=chaos,
            breaker_threshold=100,
        )
        with SupervisedPool(config) as pool:
            (result,) = pool.run([_spec()])
        assert _fields(result) == _fields(golden)
        assert pool.stats()["deadline_kills"] >= 1
        assert not list(ckpt.glob("*"))


class TestSlow:
    def test_worker_slow_changes_no_bits(self, harness):
        golden = _golden("soa")
        chaos = parse_chaos_spec("worker-slow:prob=1,delay=0.01", seed=2)
        config = PoolConfig(
            workers=1,
            heartbeat=0.05,
            backoff_base=0.01,
            checkpoint_dir=str(harness / "slow"),
            chaos=chaos,
        )
        with SupervisedPool(config) as pool:
            (result,) = pool.run([_spec()])
        assert _fields(result) == _fields(golden)
        assert pool.stats()["crashes"] == 0

    def test_slow_heartbeats_keep_worker_alive(self, harness):
        """A slow-but-alive worker must never be escalated: heartbeats
        flow through the stretched checkpoints, so tight miss budgets
        plus worker-slow stay crash-free."""
        chaos = parse_chaos_spec("worker-slow:prob=1,delay=0.05", seed=4)
        config = PoolConfig(
            workers=1,
            heartbeat=0.05,
            miss_budget=8.0,  # 0.4s of silence = hung; delays are 50ms
            term_grace=0.2,
            backoff_base=0.01,
            chaos=chaos,
        )
        with SupervisedPool(config) as pool:
            (result,) = pool.run([_spec()])
        assert isinstance(result, SimulationResult)
        assert pool.stats()["heartbeat_misses"] == 0
        assert pool.stats()["sigkills"] == 0


class TestRunCellsKillIntegration:
    def test_sweep_under_kill_chaos_matches_golden(self, harness):
        """A small sweep through ``run_cells`` (the runner's entry point)
        with worker-kill chaos routed via the ordinary ``chaos=`` field
        completes bit-identical to the chaos-free golden run."""
        cells = [
            common.RunSpec(w, preset=p, scale="tiny")
            for w in ("KCORE", "PR")
            for p in (systems.BASELINE, systems.TO)
        ]
        golden = common.run_cells(cells, jobs=1, use_cache=False)

        chaos = parse_chaos_spec("worker-kill:prob=0.5,after=1", seed=21)
        ckpt = harness / "sweep"
        chaotic = [
            common.replace(c, chaos=chaos, checkpoint_dir=str(ckpt))
            for c in cells
        ]
        # Default heartbeat cadence (kill recovery detects EOF, not
        # silence) and a high breaker threshold: on a loaded machine a
        # tight miss budget can spuriously escalate slow-but-alive
        # workers, and this test pins bit-identity, not the breaker.
        common.set_pool_policy(breaker_threshold=100)
        try:
            out = common.run_cells(chaotic, jobs=2, use_cache=False)
        finally:
            common.set_pool_policy(breaker_threshold=5)
        assert [_fields(r) for r in out] == [_fields(r) for r in golden]
        assert not list(ckpt.glob("*")), "chaotic sweep left orphans"
