"""Unit tests for batch records and aggregate batch statistics."""

import pytest

from repro.core.batching import BatchRecord, BatchStats


def make_record(index=0, begin=0, pages=4, prefetched=0, first=100, end=500,
                page_size=4096):
    return BatchRecord(
        index=index,
        begin_time=begin,
        fault_entries=pages,
        demand_pages=pages,
        prefetched_pages=prefetched,
        page_size=page_size,
        first_migration_time=first,
        end_time=end,
    )


class TestBatchRecord:
    def test_fault_handling_time(self):
        record = make_record(begin=100, first=350)
        assert record.fault_handling_time == 250

    def test_processing_time(self):
        record = make_record(begin=100, end=900)
        assert record.processing_time == 800

    def test_batch_bytes_counts_prefetch(self):
        record = make_record(pages=3, prefetched=2, page_size=4096)
        assert record.migrated_pages == 5
        assert record.batch_bytes == 5 * 4096

    def test_per_page_time(self):
        record = make_record(begin=0, end=1000, pages=4)
        assert record.per_page_time == pytest.approx(250.0)

    def test_incomplete_record(self):
        record = BatchRecord(index=0, begin_time=0)
        assert not record.complete
        assert record.processing_time == 0
        assert record.per_page_time == 0.0


class TestBatchStats:
    def make_stats(self):
        stats = BatchStats()
        stats.add(make_record(index=0, begin=0, pages=2, end=400))
        stats.add(make_record(index=1, begin=1000, pages=6, end=1800))
        return stats

    def test_counts(self):
        stats = self.make_stats()
        assert stats.num_batches == 2
        assert stats.total_migrated_pages == 8
        assert stats.mean_batch_pages == 4.0

    def test_mean_processing_time(self):
        stats = self.make_stats()
        assert stats.mean_processing_time == pytest.approx(600.0)

    def test_mean_per_page_time_weighted_by_pages(self):
        stats = self.make_stats()
        # (400 + 800) / 8 pages.
        assert stats.mean_per_page_time == pytest.approx(150.0)

    def test_empty_stats(self):
        stats = BatchStats()
        assert stats.mean_batch_pages == 0.0
        assert stats.mean_processing_time == 0.0
        assert stats.mean_per_page_time == 0.0
        assert stats.size_distribution(4096) == {}

    def test_size_distribution_fractions_sum_to_one(self):
        stats = self.make_stats()
        dist = stats.size_distribution(bucket_bytes=4 * 4096)
        assert sum(dist.values()) == pytest.approx(1.0)
        # 2-page batch -> bucket 0; 6-page batch -> bucket 1.
        assert dist[0] == pytest.approx(0.5)
        assert dist[1] == pytest.approx(0.5)

    def test_efficiency_rises_with_batch_size(self):
        stats = BatchStats()
        # Fixed 1000-cycle overhead plus 100 per page.
        for index, pages in enumerate((1, 4, 16)):
            stats.add(
                make_record(
                    index=index,
                    begin=0,
                    pages=pages,
                    end=1000 + 100 * pages,
                )
            )
        eff = stats.efficiency_by_size(bucket_bytes=4096)
        buckets = sorted(eff)
        values = [eff[b] for b in buckets]
        assert values == sorted(values)
