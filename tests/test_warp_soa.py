"""Unit tests for the struct-of-arrays warp backend.

Mirrors the object-model contracts (``tests/test_warp.py``,
``tests/test_thread_block.py``) on the SoA handles, plus the SoA-only
invariants: precomputed per-op data, contiguous block slices, and the
vectorized predicates agreeing with the scalar reference loops.
"""

import pytest

from repro.errors import ConfigError
from repro.gpu.thread_block import ThreadBlock
from repro.gpu.warp import Warp, WarpOp, WarpState
from repro.gpu.warp_soa import SoAThreadBlock, SoAWarp, WarpStore

PAGE_SHIFT = 12


def identity_scale(cycles):
    return cycles


def make_store(op_lists, scale=identity_scale):
    store = WarpStore(len(op_lists))
    for i, ops in enumerate(op_lists):
        store.add_warp(i, i, ops, PAGE_SHIFT, scale)
    return store


def two_op_warp():
    ops = [WarpOp(10, (0, 4096)), WarpOp(20, (8192,), is_store=True)]
    store = make_store([ops])
    return store.warps[0], ops


class TestWarpStore:
    def test_precomputes_op_derivatives(self):
        warp, ops = two_op_warp()
        store = warp.store
        assert store.op_pages[0] == tuple(op.pages(PAGE_SHIFT) for op in ops)
        assert store.op_lines[0] == tuple(op.lines() for op in ops)
        assert store.op_store_pages[0] == (
            (),
            ops[1].store_pages(PAGE_SHIFT),
        )
        assert store.op_compute[0] == (10, 20)

    def test_compute_scale_applied_at_build(self):
        ops = [WarpOp(10, (0,))]
        store = make_store([ops], scale=lambda c: c * 3)
        assert store.op_compute[0] == (30,)

    def test_empty_ops_warp_starts_finished(self):
        store = make_store([[]])
        assert store.warps[0].finished
        assert store.warps[0].state is WarpState.FINISHED


class TestSoAWarpLifecycle:
    def test_initial_state(self):
        warp, _ = two_op_warp()
        assert warp.state is WarpState.READY
        assert warp.pc == 0
        assert not warp.finished
        assert warp.remaining_ops == 2

    def test_advance_to_finish(self):
        warp, _ = two_op_warp()
        warp.advance()
        assert warp.state is WarpState.READY
        warp.advance()
        assert warp.finished
        assert warp.remaining_ops == 0

    def test_stall_and_wake_single_page(self):
        warp, _ = two_op_warp()
        warp.stall_on([7], now=100, replay_latency=0)
        assert warp.state is WarpState.STALLED
        assert warp.store.waiting_count[0] == 1
        assert warp.page_arrived(7, now=400)
        assert warp.state is WarpState.READY
        assert warp.stalled_cycles == 300
        assert warp.store.waiting_count[0] == 0

    def test_wake_requires_all_pages(self):
        warp, _ = two_op_warp()
        warp.stall_on([1, 2, 3], now=0, replay_latency=0)
        assert not warp.page_arrived(1, now=10)
        assert not warp.page_arrived(3, now=20)
        assert warp.state is WarpState.STALLED
        assert warp.page_arrived(2, now=30)
        assert warp.state is WarpState.READY

    def test_restall_preserves_stall_start(self):
        # Same accounting rule as Warp.stall_on: a re-stall keeps the
        # original stall_start and max-merges the replay latency.
        warp, _ = two_op_warp()
        warp.stall_on([1], now=100, replay_latency=40)
        warp.stall_on([2], now=500, replay_latency=25)
        assert warp.stall_start == 100
        assert warp.resume_latency == 40
        assert not warp.page_arrived(1, now=900)
        assert warp.page_arrived(2, now=1000)
        assert warp.stalled_cycles == 900

    def test_current_op_tracks_pc(self):
        warp, ops = two_op_warp()
        assert warp.current_op() is ops[0]
        warp.advance()
        assert warp.current_op() is ops[1]

    def test_state_setter_round_trips_every_state(self):
        warp, _ = two_op_warp()
        for state in WarpState:
            warp.state = state
            assert warp.state is state


def make_blocks(n_warps=4, ops_per_warp=2):
    """Matched SoA and object blocks over identical traces."""
    op_lists = [
        [WarpOp(1, (4096 * (w + o),)) for o in range(ops_per_warp)]
        for w in range(n_warps)
    ]
    store = make_store(op_lists)
    soa_block = SoAThreadBlock(0, store.warps)
    obj_warps = [Warp(i, ops) for i, ops in enumerate(op_lists)]
    obj_block = ThreadBlock(0, obj_warps)
    return soa_block, obj_block


def set_states(soa_block, obj_block, states):
    for warp, obj_warp, state in zip(
        soa_block.warps, obj_block.warps, states
    ):
        warp.state = state
        obj_warp.state = state


PREDICATE_CASES = [
    [WarpState.READY] * 4,
    [WarpState.STALLED] * 4,
    [WarpState.FINISHED] * 4,
    [WarpState.STALLED, WarpState.READY, WarpState.STALLED, WarpState.STALLED],
    [WarpState.STALLED, WarpState.FINISHED, WarpState.STALLED, WarpState.SUSPENDED],
    [WarpState.SUSPENDED] * 4,
    [WarpState.RUNNING, WarpState.STALLED, WarpState.FINISHED, WarpState.READY],
    [WarpState.FINISHED, WarpState.FINISHED, WarpState.STALLED, WarpState.FINISHED],
]


class TestSoAThreadBlockPredicates:
    @pytest.mark.parametrize("states", PREDICATE_CASES)
    def test_predicates_match_object_model(self, states):
        soa_block, obj_block = make_blocks()
        set_states(soa_block, obj_block, states)
        assert soa_block.finished == obj_block.finished
        assert soa_block.fully_stalled() == obj_block.fully_stalled()
        assert soa_block.fully_mem_stalled() == obj_block.fully_mem_stalled()
        assert soa_block.ready_to_run() == obj_block.ready_to_run()

    def test_mem_wait_feeds_fully_mem_stalled(self):
        soa_block, obj_block = make_blocks()
        states = [
            WarpState.STALLED,
            WarpState.READY,
            WarpState.FINISHED,
            WarpState.STALLED,
        ]
        set_states(soa_block, obj_block, states)
        assert not soa_block.fully_mem_stalled()
        soa_block.warps[1].mem_wait = True
        obj_block.warps[1].mem_wait = True
        assert soa_block.fully_mem_stalled() == obj_block.fully_mem_stalled()
        assert soa_block.fully_mem_stalled()

    def test_suspend_and_resume_round_trip(self):
        soa_block, obj_block = make_blocks()
        states = [
            WarpState.READY,
            WarpState.STALLED,
            WarpState.READY,
            WarpState.FINISHED,
        ]
        set_states(soa_block, obj_block, states)
        suspended = soa_block.suspend_runnable_warps()
        expected = obj_block.suspend_runnable_warps()
        assert [w.warp_id for w in suspended] == [w.warp_id for w in expected]
        assert all(w.state is WarpState.SUSPENDED for w in suspended)
        resumed = soa_block.resume_suspended_warps()
        assert [w.warp_id for w in resumed] == [w.warp_id for w in suspended]
        assert all(w.state is WarpState.READY for w in resumed)

    def test_suspend_with_nothing_runnable_is_empty(self):
        soa_block, _ = make_blocks()
        for warp in soa_block.warps:
            warp.state = WarpState.STALLED
        assert soa_block.suspend_runnable_warps() == []
        assert soa_block.resume_suspended_warps() == []

    def test_contiguity_enforced(self):
        store = make_store([[WarpOp(1, (0,))] for _ in range(3)])
        with pytest.raises(ValueError):
            SoAThreadBlock(0, [store.warps[0], store.warps[2]])

    def test_block_slice_offsets(self):
        # Two blocks over one store: predicates must only see their slice.
        op_lists = [[WarpOp(1, (4096 * i,))] for i in range(4)]
        store = make_store(op_lists)
        first = SoAThreadBlock(0, store.warps[:2])
        second = SoAThreadBlock(1, store.warps[2:])
        for warp in first.warps:
            warp.state = WarpState.STALLED
        assert first.fully_stalled()
        assert not second.fully_stalled()
        assert second.ready_to_run()


class TestBackendConstruction:
    def test_simulator_rejects_unknown_backend(self):
        from repro import build_workload, systems
        from repro.simulator import GpuUvmSimulator

        wl = build_workload("KCORE", scale="tiny", seed=0)
        config = systems.BASELINE.configure(wl, ratio=0.5)
        with pytest.raises(ConfigError, match="backend"):
            GpuUvmSimulator(wl, config, backend="vectorized")

    def test_soa_simulator_builds_soa_blocks(self):
        from repro import build_workload, systems
        from repro.simulator import GpuUvmSimulator

        wl = build_workload("KCORE", scale="tiny", seed=0)
        config = systems.BASELINE.configure(wl, ratio=0.5)
        sim = GpuUvmSimulator(wl, config, backend="soa")
        blocks = sim._build_blocks_soa(wl.kernels[0])
        assert blocks, "expected at least one block"
        assert all(isinstance(b, SoAThreadBlock) for b in blocks)
        assert all(isinstance(w, SoAWarp) for b in blocks for w in b.warps)
        store = sim._warp_store
        assert store is blocks[0].store
        # Per-block index ranges are contiguous and non-overlapping.
        ranges = sorted((b.lo, b.hi) for b in blocks)
        for (_, prev_hi), (lo, _) in zip(ranges, ranges[1:]):
            assert lo >= prev_hi
