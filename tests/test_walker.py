"""Unit tests for the page-table walker and walk cache."""

import pytest

from repro.errors import ConfigError
from repro.vm.walker import PageTableWalker, PageWalkCache


class TestPageWalkCache:
    def test_first_access_misses_then_hits(self):
        cache = PageWalkCache(4)
        assert not cache.lookup(0)
        assert cache.lookup(1)  # same 512-page region
        assert cache.hits == 1
        assert cache.misses == 1

    def test_different_regions_miss(self):
        cache = PageWalkCache(4)
        cache.lookup(0)
        assert not cache.lookup(512)

    def test_lru_capacity(self):
        cache = PageWalkCache(2)
        cache.lookup(0)       # region 0
        cache.lookup(512)     # region 1
        cache.lookup(1024)    # region 2 evicts region 0
        assert not cache.lookup(0)

    def test_zero_entries_always_misses(self):
        cache = PageWalkCache(0)
        assert not cache.lookup(0)
        assert not cache.lookup(0)


class TestWalker:
    def make(self, slots=2, levels=4, latency=100, cache=0):
        return PageTableWalker(slots, levels, latency, cache)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            self.make(slots=0)
        with pytest.raises(ConfigError):
            self.make(levels=0)

    def test_cold_walk_costs_all_levels(self):
        walker = self.make()
        assert walker.walk(page=0, now=0) == 400

    def test_walk_cache_hit_costs_leaf_only(self):
        walker = self.make(cache=4)
        walker.walk(page=0, now=0)
        # Second walk in the same region: upper levels cached.
        latency = walker.walk(page=1, now=1000)
        assert latency == 100

    def test_concurrent_walks_use_separate_slots(self):
        walker = self.make(slots=2)
        assert walker.walk(0, now=0) == 400
        assert walker.walk(600, now=0) == 400  # second slot, no queueing

    def test_queueing_when_slots_busy(self):
        walker = self.make(slots=1)
        assert walker.walk(0, now=0) == 400
        # Issued at 0 too, but the only slot is busy until 400.
        assert walker.walk(600, now=0) == 800
        assert walker.total_queue_cycles == 400

    def test_slots_free_over_time(self):
        walker = self.make(slots=1)
        walker.walk(0, now=0)
        assert walker.walk(600, now=500) == 400  # slot already free

    def test_mean_queue_cycles(self):
        walker = self.make(slots=1)
        walker.walk(0, now=0)
        walker.walk(600, now=0)
        assert walker.mean_queue_cycles == pytest.approx(200.0)

    def test_same_page_walks_coalesce(self):
        walker = self.make(slots=2)
        first = walker.walk(0, now=0)
        assert first == 400
        # A second request for the same page mid-walk waits for the first
        # walk instead of occupying another slot.
        assert walker.walk(0, now=100) == 300
        assert walker.coalesced_walks == 1
        assert walker.walks == 1
        # A different page still gets its own slot immediately.
        assert walker.walk(600, now=100) == 400

    def test_completed_walk_does_not_coalesce(self):
        walker = self.make(slots=1, cache=0)
        walker.walk(0, now=0)
        # Long after completion: a fresh walk is issued.
        assert walker.walk(0, now=1000) == 400
        assert walker.coalesced_walks == 0
        assert walker.walks == 2

    def test_inflight_table_stays_bounded(self):
        walker = self.make(slots=4)
        for page in range(200):
            walker.walk(page * 600, now=page * 10_000)
        assert len(walker._inflight) <= 4 * walker.max_concurrent_walks + 1
