"""The server on the supervised pool: crash visibility, warm hit-rate.

* Every induced worker crash is visible in ``/v1/stats`` (pool restart
  and crash counters) and ``/v1/healthz`` (workers alive / restarts /
  quarantined keys).
* A request that crashes its worker still answers 200 with the
  bit-identical result, and the *second* request for the same cell rides
  the warm cache — a worker crash never costs the cache its entry.
* A key that crashes repeatedly is quarantined: the client receives a
  structured ``cell_failed`` envelope (HTTP 500) naming the poison-cell
  error, and the key shows up in the health report.
* ``supervised=False`` still serves (the pre-pool in-thread path).
* Degraded capacity stretches ``Retry-After``.
"""

from __future__ import annotations

import pytest

from repro.chaos import parse_chaos_spec
from repro.serve.testing import running_server

FAST = {"workload": "KCORE", "scale": "tiny", "seed": 0}


def _pool_kwargs(tmp_path, chaos_spec=None, seed=9, **overrides):
    kwargs = dict(
        cache_dir=str(tmp_path / "cache"),
        checkpoint_dir=str(tmp_path / "ckpt"),
        announce=False,
        jobs=2,
        worker_heartbeat=0.05,
    )
    if chaos_spec is not None:
        kwargs["pool_chaos"] = parse_chaos_spec(chaos_spec, seed=seed)
    kwargs.update(overrides)
    return kwargs


class TestCrashVisibility:
    def test_crash_answers_200_and_shows_in_stats(self, tmp_path):
        with running_server(
            **_pool_kwargs(tmp_path, "worker-kill:prob=0.7,after=1")
        ) as (server, client):
            golden = None
            with running_server(
                cache_dir=str(tmp_path / "golden-cache"),
                announce=False,
                supervised=True,
                jobs=1,
            ) as (_, golden_client):
                golden = golden_client.run(**FAST).json()["result"]

            response = client.run(**FAST)
            assert response.status == 200
            payload = response.json()
            assert payload["result"] == golden, (
                "crash-recovered result must be bit-identical"
            )

            stats = client.stats()
            pool = stats["pool"]
            assert pool["crashes"] >= 1, "induced crash missing from stats"
            assert pool["resumes"] >= 1

            # A crashed slot respawns during the next batch's supervision
            # loop (restart backoff runs between batches, not during the
            # idle gap): push one more cold cell through and the restart
            # becomes visible.
            import time

            time.sleep(0.3)
            second = client.run(workload="KCORE", scale="tiny", seed=1)
            assert second.status == 200
            assert client.stats()["pool"]["restarts"] >= 1

            health = client.healthz()
            workers = health["workers"]
            assert workers["workers_target"] == 2
            assert workers["restarts"] >= 1
            assert workers["broken"] is False

    def test_warm_hit_rate_preserved_across_crash(self, tmp_path):
        with running_server(
            **_pool_kwargs(tmp_path, "worker-kill:prob=0.7,after=1")
        ) as (server, client):
            cold = client.run(**FAST).json()
            assert cold["cached"] is False
            crashes = client.stats()["pool"]["crashes"]
            assert crashes >= 1

            warm = client.run(**FAST).json()
            assert warm["cached"] is True, (
                "a crash-recovered cell must still populate the cache"
            )
            assert warm["result"] == cold["result"]
            # The warm answer never reached the pool: no new crashes.
            assert client.stats()["pool"]["crashes"] == crashes
            assert client.stats()["server"]["cache"]["hits"] >= 1


class TestPoisonCell:
    def test_quarantined_key_returns_structured_500(self, tmp_path):
        with running_server(
            **_pool_kwargs(
                tmp_path,
                "worker-kill:prob=1,after=1",
                breaker_threshold=2,
            )
        ) as (server, client):
            response = client.run(**FAST)
            assert response.status == 500
            error = response.json()["error"]
            assert error["code"] == "cell_failed"
            assert error["error_type"] == "PoisonCellError"

            stats = client.stats()
            assert stats["pool"]["poisoned"] == 1
            assert len(stats["pool"]["quarantined_keys"]) == 1
            assert client.healthz()["workers"]["quarantined_keys"] == 1


class TestUnsupervised:
    def test_no_supervise_path_still_serves(self, tmp_path):
        with running_server(
            cache_dir=str(tmp_path / "cache"),
            announce=False,
            supervised=False,
        ) as (server, client):
            response = client.run(**FAST)
            assert response.status == 200
            assert client.stats()["pool"] is None
            assert client.healthz()["workers"] is None


class TestDegradedCapacity:
    def test_retry_after_stretches_with_dead_fleet(self, tmp_path):
        with running_server(
            **_pool_kwargs(tmp_path)
        ) as (server, client):
            server._backlog = 8
            saved = {}
            try:
                healthy = server._retry_after()
                # Simulate a fully-dead fleet (mid-respawn) without
                # touching real workers: alive counts read slot state.
                for slot in server._pool._slots:
                    saved[slot.index] = slot.worker
                    slot.worker = None
                degraded = server._retry_after()
            finally:
                for slot in server._pool._slots:
                    slot.worker = saved.get(slot.index, slot.worker)
                server._backlog = 0
            assert degraded > healthy, (
                "Retry-After must stretch when capacity is degraded"
            )
