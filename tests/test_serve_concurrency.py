"""Serve concurrency contract: dedupe, batching, backpressure, oracles.

The acceptance properties locked here:

* N concurrent *identical* requests execute the simulation exactly once
  (in-flight dedupe onto one shared future).
* Concurrent *distinct* requests coalesce into batches.
* A full admission queue answers 429 with a Retry-After hint instead of
  queueing unboundedly.
* A client disconnecting mid-stream never poisons the shared future its
  deduped peers are waiting on.
* Randomised interleavings (Hypothesis) always produce results
  *bit-identical* to a serial oracle computed without the server — and
  the serial oracle itself is byte-for-byte what ``repro-run
  --result-out`` writes (one shared serialiser).
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import common
from repro.serve.protocol import (
    dump_result_json,
    result_payload,
    spec_from_request,
    validate_run_request,
)
from repro.serve.testing import _cache_state_guard, running_server

#: Small request pool shared by the oracle and the randomised tests.
POOL = [
    {"workload": "KCORE", "scale": "tiny", "seed": 0},
    {"workload": "KCORE", "scale": "tiny", "seed": 1},
    {"workload": "BFS-TWC", "scale": "tiny", "seed": 0},
    {"workload": "PR", "scale": "tiny", "seed": 0},
]


def _pool_key(request: dict) -> tuple:
    return (request["workload"], request["seed"])


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """Serial, server-free result payloads for every pool request.

    Computed in an isolated cache directory *before* any server runs, so
    the server can never feed the oracle its own answers.
    """
    cache = tmp_path_factory.mktemp("oracle-cache")
    payloads = {}
    with _cache_state_guard():
        common.set_cache_dir(cache)
        common.set_cache_enabled(True)
        common.clear_run_cache()
        for request in POOL:
            spec = spec_from_request(validate_run_request(dict(request)))
            (result,) = common.run_cells([spec], jobs=1)
            payloads[_pool_key(request)] = result_payload(result)
    return payloads


def _canon(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _wait_until(predicate, deadline: float = 15.0) -> bool:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _on_worker(client, batches: int = 1):
    """True once ``batches`` batches have been dispatched to the worker."""
    return client.stats()["server"]["batches"]["count"] >= batches


def _fan_out(client, requests, stagger: float = 0.0):
    """Issue ``requests`` concurrently; returns responses in order."""

    def fire(args):
        index, request = args
        if stagger:
            time.sleep(stagger * index)
        return client.run(**request)

    with ThreadPoolExecutor(max_workers=max(2, len(requests))) as pool:
        return list(pool.map(fire, enumerate(requests)))


class TestDedupe:
    def test_identical_inflight_requests_execute_once(
        self, tmp_path, oracle
    ):
        n = 6
        with running_server(
            cache_dir=str(tmp_path), batch_window=0.3
        ) as (server, client):
            baseline = client.stats()["run_cache"]
            responses = _fan_out(client, [dict(POOL[0])] * n)
            assert all(r.status == 200 for r in responses)
            for response in responses:
                assert _canon(response.json()["result"]) == _canon(
                    oracle[_pool_key(POOL[0])]
                )
            stats = client.stats()
            executed = stats["run_cache"]["misses"] - baseline["misses"]
            assert executed == 1, f"dedupe failed: {executed} executions"
            finished = stats["server"]["requests_finished"]
            assert finished["ok"] == 1
            # Latecomers that missed the flight window hit the cache.
            assert finished["deduped"] + finished["cached"] == n - 1
            assert stats["server"]["dedupe_hits"] == finished["deduped"]

    def test_no_cache_requests_recompute_but_match(self, tmp_path, oracle):
        with running_server(cache_dir=str(tmp_path)) as (_server, client):
            first = client.run(**POOL[0], no_cache=True)
            second = client.run(**POOL[0], no_cache=True)
            assert first.json()["cached"] is False
            assert second.json()["cached"] is False
            for response in (first, second):
                assert _canon(response.json()["result"]) == _canon(
                    oracle[_pool_key(POOL[0])]
                )


class TestBatching:
    def test_distinct_requests_coalesce_into_batches(self, tmp_path, oracle):
        with running_server(
            cache_dir=str(tmp_path), batch_window=0.5
        ) as (_server, client):
            responses = _fan_out(
                client, [dict(r) for r in POOL], stagger=0.05
            )
            assert all(r.status == 200 for r in responses)
            for request, response in zip(POOL, responses):
                assert _canon(response.json()["result"]) == _canon(
                    oracle[_pool_key(request)]
                )
            batches = client.stats()["server"]["batches"]
            assert batches["count"] >= 1
            assert batches["max_size"] >= 2, "no coalescing happened"

    def test_batched_results_keep_request_identity(self, tmp_path, oracle):
        """Order independence: each response carries *its* cell's result."""
        with running_server(
            cache_dir=str(tmp_path), batch_window=0.4
        ) as (_server, client):
            shuffled = [POOL[2], POOL[0], POOL[3], POOL[1]]
            responses = _fan_out(client, [dict(r) for r in shuffled])
            for request, response in zip(shuffled, responses):
                payload = response.json()["result"]
                assert payload["workload"] == request["workload"]
                assert _canon(payload) == _canon(oracle[_pool_key(request)])


class TestBackpressure:
    def test_saturated_server_answers_429_with_retry_after(self, tmp_path):
        slow = {"workload": "BFS-TWC", "scale": "small", "seed": 0}
        with running_server(
            cache_dir=str(tmp_path),
            queue_limit=1,
            batch_window=0.0,
            batch_max=1,
        ) as (_server, client):
            with ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(client.run, **slow)
                # Wait for the dispatch, not a wall-clock guess: the
                # admission slot frees only when the cell settles.
                assert _wait_until(lambda: _on_worker(client))
                second = client.run(**POOL[0])
                assert second.status == 429
                envelope = second.json()
                assert envelope["error"]["code"] == "saturated"
                assert envelope["error"]["retry_after"] >= 1
                assert int(second.headers["retry-after"]) >= 1
                assert first.result().status == 200
            stats = client.stats()["server"]
            assert stats["requests_finished"]["rejected"] >= 1

    def test_rejected_request_succeeds_on_retry(self, tmp_path):
        slow = {"workload": "BFS-TWC", "scale": "small", "seed": 0}
        with running_server(
            cache_dir=str(tmp_path),
            queue_limit=1,
            batch_window=0.0,
            batch_max=1,
        ) as (_server, client):
            with ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(client.run, **slow)
                assert _wait_until(lambda: _on_worker(client))
                rejected = client.run(**POOL[0])
                assert rejected.status == 429
                assert first.result().status == 200
            # Capacity freed: the retry goes through.
            retry = client.run(**POOL[0])
            assert retry.status == 200


class TestDisconnect:
    def test_mid_stream_disconnect_does_not_poison_the_future(
        self, tmp_path, oracle
    ):
        request = dict(POOL[3])
        with running_server(
            cache_dir=str(tmp_path), batch_window=0.6
        ) as (server, client):
            # Hand-rolled streaming request, abandoned after the first
            # event lands.
            body = json.dumps({**request, "stream": True}).encode()
            head = (
                f"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            sock = socket.create_connection(
                (client.host, client.port), timeout=10
            )
            sock.sendall(head + body)
            sock.recv(256)  # wait for the response head / first event
            sock.close()  # abandon mid-flight

            # A deduped peer issued while the cell is still in its batch
            # window must ride the same ticket and still succeed.
            response = client.run(**request)
            assert response.status == 200
            assert _canon(response.json()["result"]) == _canon(
                oracle[_pool_key(request)]
            )
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if client.stats()["server"]["streams_aborted"] >= 1:
                    break
                time.sleep(0.05)
            assert client.stats()["server"]["streams_aborted"] >= 1


# ----------------------------------------------------------------------
# Randomised interleavings vs the serial oracle
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def interleaving_server(tmp_path_factory):
    cache = tmp_path_factory.mktemp("interleave-cache")
    with running_server(
        cache_dir=str(cache), batch_window=0.05
    ) as (server, client):
        yield server, client


class TestInterleavings:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(POOL) - 1),
            min_size=1,
            max_size=8,
        ),
        stagger_ms=st.integers(min_value=0, max_value=30),
    )
    def test_any_interleaving_matches_serial_oracle(
        self, picks, stagger_ms, interleaving_server, oracle
    ):
        """Whatever mix of concurrent requests arrives — duplicates,
        distinct cells, cache hits, dedupe flights — every response is
        bit-identical to the serial oracle for its cell."""
        _server, client = interleaving_server
        requests = [dict(POOL[i]) for i in picks]
        responses = _fan_out(client, requests, stagger=stagger_ms / 1000.0)
        for request, response in zip(requests, responses):
            assert response.status == 200
            envelope = response.json()
            assert envelope["status"] == "ok"
            assert _canon(envelope["result"]) == _canon(
                oracle[_pool_key(request)]
            )


# ----------------------------------------------------------------------
# Bit-identity with the single-run CLI
# ----------------------------------------------------------------------
class TestCliBitIdentity:
    def test_server_result_equals_repro_run_result_out(self, tmp_path):
        """The wire payload re-serialised with the shared serialiser is
        byte-for-byte what ``repro-run --result-out`` writes."""
        ratio = common.half_ratio("tiny")
        out = tmp_path / "cli-result.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "KCORE",
                "--scale",
                "tiny",
                "--system",
                "TO+UE",
                "--ratio",
                str(ratio),
                "--seed",
                "0",
                "--obs",
                "off",
                "--result-out",
                str(out),
            ],
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
        )
        cli_bytes = out.read_text()

        with running_server(
            cache_dir=str(tmp_path / "serve-cache")
        ) as (_server, client):
            response = client.run(
                workload="KCORE", scale="tiny", ratio=ratio, seed=0
            )
            assert response.status == 200
            payload = response.json()["result"]
        served = (
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        assert served == cli_bytes
        # And the shared serialiser module is what both sides use.
        spec = spec_from_request(
            validate_run_request(
                {"workload": "KCORE", "scale": "tiny", "ratio": ratio}
            )
        )
        with _cache_state_guard():
            common.set_cache_dir(tmp_path / "oracle2")
            common.clear_run_cache()
            (result,) = common.run_cells([spec], jobs=1)
        assert dump_result_json(result) == cli_bytes
