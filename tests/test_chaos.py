"""Chaos injection: spec grammar, determinism, and per-injector effects."""

import pytest

from repro import GpuUvmSimulator, build_workload, systems
from repro.chaos import ChaosSession
from repro.chaos.config import ChaosConfig, InjectorSpec, parse_chaos_spec
from repro.errors import InjectionError


def run_sim(chaos=None, *, system=systems.BASELINE, check_invariants=False):
    workload = build_workload("BFS-TTC", scale="tiny", seed=0)
    config = system.configure(
        workload, ratio=0.5, chaos=chaos, check_invariants=check_invariants
    )
    return GpuUvmSimulator(workload, config).run()


class TestSpecParsing:
    def test_single_injector_no_params(self):
        config = parse_chaos_spec("drop-fault", seed=3)
        assert config.injectors == (InjectorSpec("drop-fault"),)
        assert config.seed == 3

    def test_multi_injector_with_params(self):
        config = parse_chaos_spec(
            "fault-latency:mult=2,add=500;dma-stall:prob=0.1"
        )
        assert [spec.kind for spec in config.injectors] == [
            "fault-latency",
            "dma-stall",
        ]
        assert config.injectors[0].param("mult", 1.0) == 2.0
        assert config.injectors[0].param("add", 0.0) == 500.0
        assert config.injectors[1].param("prob", 0.0) == 0.1

    def test_spec_string_round_trips(self):
        text = "fault-latency:mult=2,add=500;drop-fault:prob=0.25"
        config = parse_chaos_spec(text)
        assert parse_chaos_spec(config.spec_string()) == config

    def test_unknown_kind_rejected(self):
        with pytest.raises(InjectionError, match="unknown chaos injector"):
            parse_chaos_spec("meteor-strike")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(InjectionError, match="unknown parameter"):
            parse_chaos_spec("drop-fault:mult=2")

    def test_malformed_pair_rejected(self):
        with pytest.raises(InjectionError, match="malformed chaos parameter"):
            parse_chaos_spec("drop-fault:prob")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(InjectionError, match="must be numeric"):
            parse_chaos_spec("drop-fault:prob=often")

    def test_prob_out_of_range_rejected(self):
        with pytest.raises(InjectionError, match="within"):
            parse_chaos_spec("drop-fault:prob=1.5")

    def test_empty_spec_rejected(self):
        with pytest.raises(InjectionError):
            parse_chaos_spec("")
        with pytest.raises(InjectionError):
            parse_chaos_spec(" ; ")

    def test_config_is_hashable(self):
        a = parse_chaos_spec("drop-fault:prob=0.5", seed=1)
        b = parse_chaos_spec("drop-fault:prob=0.5", seed=1)
        assert hash(a) == hash(b) and a == b


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        chaos = parse_chaos_spec(
            "fault-latency:prob=0.5,mult=2;dma-stall:prob=0.2;"
            "drop-fault:prob=0.05;dup-fault:prob=0.1;evict-contend:prob=0.3",
            seed=42,
        )
        first = run_sim(chaos)
        second = run_sim(chaos)
        assert first.exec_cycles == second.exec_cycles
        assert first.batch_stats.num_batches == second.batch_stats.num_batches
        assert first.extras == second.extras
        assert first.extras["chaos.total_injections"] > 0

    def test_different_seed_diverges(self):
        spec = "fault-latency:prob=0.5,mult=3;drop-fault:prob=0.1"
        a = run_sim(parse_chaos_spec(spec, seed=1))
        b = run_sim(parse_chaos_spec(spec, seed=2))
        # Different RNG streams must perturb differently somewhere.
        assert (a.exec_cycles, a.extras) != (b.exec_cycles, b.extras)

    def test_injector_streams_are_independent(self):
        """Adding an injector must not change another's decisions."""
        solo = ChaosSession(parse_chaos_spec("drop-fault:prob=0.5", seed=9))
        both = ChaosSession(
            parse_chaos_spec("drop-fault:prob=0.5;dup-fault:prob=0.5", seed=9)
        )
        solo_actions = [solo.fault_entry_action(p, p) for p in range(64)]
        both_actions = [both.fault_entry_action(p, p) for p in range(64)]
        dropped = [a == "drop" for a in solo_actions]
        assert dropped == [a == "drop" for a in both_actions]


class TestInjectorEffects:
    def test_fault_latency_slows_the_run(self):
        clean = run_sim()
        slowed = run_sim(parse_chaos_spec("fault-latency:mult=4", seed=0))
        assert slowed.exec_cycles > clean.exec_cycles
        assert slowed.extras["chaos.fault-latency"] > 0

    def test_dma_stall_records_stall_cycles(self):
        result = run_sim(parse_chaos_spec("dma-stall:prob=0.5", seed=0))
        assert result.extras["chaos.dma-stall"] > 0
        assert result.extras["chaos.dma_stall_cycles"] > 0

    def test_drop_fault_liveness(self):
        """Dropped faults are replayed at batch end — the run completes."""
        result = run_sim(
            parse_chaos_spec("drop-fault:prob=0.5", seed=0),
            check_invariants=True,
        )
        assert result.extras["chaos.faults_dropped"] > 0
        assert result.exec_cycles > 0

    def test_dup_fault_accounts_duplicates(self):
        result = run_sim(
            parse_chaos_spec("dup-fault:prob=0.5", seed=0),
            check_invariants=True,
        )
        assert result.extras["chaos.faults_duplicated"] > 0

    def test_evict_contend_on_eviction_system(self):
        clean = run_sim(system=systems.UE)
        result = run_sim(
            parse_chaos_spec("evict-contend:prob=1.0,mult=8", seed=0),
            system=systems.UE,
        )
        assert result.extras["chaos.evict-contend"] > 0
        assert result.exec_cycles >= clean.exec_cycles

    def test_fail_batch_raises_injection_error(self):
        with pytest.raises(InjectionError, match="fail-batch"):
            run_sim(parse_chaos_spec("fail-batch:batch=0"))

    def test_chaos_survives_under_invariants(self):
        """Every invariant holds on a heavily perturbed run."""
        chaos = parse_chaos_spec(
            "fault-latency:prob=0.5,mult=2;dma-stall:prob=0.3;"
            "drop-fault:prob=0.2;dup-fault:prob=0.2;evict-contend:prob=0.5",
            seed=1234,
        )
        result = run_sim(chaos, system=systems.TO_UE, check_invariants=True)
        assert result.extras["invariant_checks"] > 0
        assert result.extras["chaos.total_injections"] > 0

    def test_no_chaos_means_no_extras(self):
        result = run_sim()
        assert "chaos.total_injections" not in result.extras


class TestCacheKeyCoverage:
    def test_chaos_is_part_of_the_memo_key(self):
        import dataclasses

        from repro.experiments import common

        base = common.RunSpec("KCORE", preset=systems.BASELINE).resolved()
        chaotic = dataclasses.replace(
            base, chaos=parse_chaos_spec("drop-fault:prob=0.1", seed=0)
        )
        reseeded = dataclasses.replace(
            base, chaos=parse_chaos_spec("drop-fault:prob=0.1", seed=1)
        )
        checked = dataclasses.replace(base, check_invariants=True)
        keys = {
            common._memo_key(spec)
            for spec in (base, chaotic, reseeded, checked)
        }
        assert len(keys) == 4

    def test_timeout_is_not_part_of_the_memo_key(self):
        import dataclasses

        from repro.experiments import common

        base = common.RunSpec("KCORE", preset=systems.BASELINE).resolved()
        budgeted = dataclasses.replace(base, wall_budget_seconds=30.0)
        assert common._memo_key(base) == common._memo_key(budgeted)
