"""Integration matrix: every paper workload runs end-to-end.

Each of the 11 irregular workloads completes under the baseline at the
calibrated oversubscription, with the core conservation invariants
holding.  (Per-system deep dives live in test_simulator.py; this file is
the breadth sweep.)
"""

import pytest

from repro import GpuUvmSimulator, build_workload, systems
from repro.experiments.common import PAPER_WORKLOADS
from repro.workloads.registry import SCALES

RATIO = SCALES["tiny"].half_memory_ratio


@pytest.fixture(scope="module", params=PAPER_WORKLOADS)
def baseline_run(request):
    workload = build_workload(request.param, scale="tiny")
    config = systems.BASELINE.configure(workload, ratio=RATIO)
    sim = GpuUvmSimulator(workload, config)
    result = sim.run(max_events=40_000_000)
    return workload, config, sim, result


class TestEveryWorkloadUnderBaseline:
    def test_completes(self, baseline_run):
        _wl, _cfg, _sim, result = baseline_run
        assert result.exec_cycles > 0

    def test_migrations_cover_unique_faults(self, baseline_run):
        _wl, _cfg, _sim, result = baseline_run
        # Every uniquely faulted page must arrive at least once.
        assert result.migrated_pages >= result.unique_fault_pages

    def test_frame_conservation(self, baseline_run):
        _wl, cfg, sim, result = baseline_run
        assert sim.memory.resident_pages <= cfg.uvm.frames
        # allocations - evictions == resident at the end.
        assert (
            sim.memory.allocations - sim.memory.evictions
            == sim.memory.resident_pages
        )

    def test_page_table_consistent_with_memory(self, baseline_run):
        _wl, _cfg, sim, result = baseline_run
        assert sim.page_table.resident_pages == sim.memory.resident_pages
        for page in sim.page_table.resident_set():
            assert sim.memory.is_resident(page)

    def test_batches_account_for_migrations(self, baseline_run):
        _wl, _cfg, _sim, result = baseline_run
        assert result.batch_stats.total_migrated_pages == result.migrated_pages

    def test_batch_records_complete_and_ordered(self, baseline_run):
        _wl, _cfg, _sim, result = baseline_run
        records = result.batch_stats.records
        assert all(r.complete for r in records)
        begins = [r.begin_time for r in records]
        assert begins == sorted(begins)
        for record in records:
            assert record.begin_time <= record.first_migration_time
            assert record.first_migration_time <= record.end_time

    def test_touched_pages_within_footprint(self, baseline_run):
        wl, _cfg, sim, _result = baseline_run
        valid = wl.address_space.all_pages()
        assert sim.page_table.resident_set() <= valid

    def test_no_stalled_warps_left(self, baseline_run):
        _wl, _cfg, sim, _result = baseline_run
        assert not sim.runtime.waiting_pages()
        assert sim.runtime.fault_buffer.empty


class TestCrossSystemSpotChecks:
    """Invariants that must hold for representative workloads x systems."""

    @pytest.mark.parametrize("name", ["BFS-TWC", "SSSP-TWC", "GC-TTC"])
    def test_to_ue_not_slower_than_baseline(self, name):
        workload = build_workload(name, scale="tiny")
        base = GpuUvmSimulator(
            workload, systems.BASELINE.configure(workload, ratio=RATIO)
        ).run()
        to_ue = GpuUvmSimulator(
            workload, systems.TO_UE.configure(workload, ratio=RATIO)
        ).run()
        assert to_ue.exec_cycles <= base.exec_cycles

    @pytest.mark.parametrize("name", ["BFS-TTC", "KCORE"])
    def test_unlimited_is_fastest(self, name):
        workload = build_workload(name, scale="tiny")
        unlimited = GpuUvmSimulator(
            workload, systems.UNLIMITED.configure(workload, ratio=1.0)
        ).run()
        for preset in (systems.BASELINE, systems.TO_UE, systems.ETC):
            pressured = GpuUvmSimulator(
                workload, preset.configure(workload, ratio=RATIO)
            ).run()
            assert unlimited.exec_cycles < pressured.exec_cycles

    @pytest.mark.parametrize("name", ["BFS-TTC", "PR"])
    def test_faults_bounded_by_workload_footprint(self, name):
        # Which pages *fault* is timing-dependent (a page may stay resident
        # in one system and get evicted-then-refaulted in another), but
        # every faulted page must be one the workload actually touches.
        workload = build_workload(name, scale="tiny")
        touched = workload.touched_pages()
        for preset in (systems.BASELINE, systems.UE):
            sim = GpuUvmSimulator(
                workload, preset.configure(workload, ratio=RATIO)
            )
            sim.run()
            assert frozenset(sim._unique_fault_pages) <= touched
