"""Runtime behaviour around prefetching and capacity pressure."""

from repro.gpu.config import UvmConfig
from repro.sim.engine import Engine
from repro.uvm.eviction import SerializedEviction, UnobtrusiveEviction
from repro.uvm.memory_manager import GpuMemoryManager
from repro.uvm.prefetcher import make_prefetcher
from repro.uvm.replacement import AgedLru
from repro.uvm.runtime import UvmRuntime
from repro.uvm.transfer import PcieModel
from repro.vm.page_table import PageTable


def make_runtime(frames, *, region_pages=8, eviction=None, valid=None):
    engine = Engine()
    uvm = UvmConfig(
        page_size=4096,
        fault_handling_cycles=1000,
        interrupt_latency_cycles=100,
        gpu_memory_bytes=frames * 4096 if frames else None,
        prefetcher="tree",
        prefetch_region_bytes=region_pages * 4096,
    )
    memory = GpuMemoryManager(uvm.frames, AgedLru())
    runtime = UvmRuntime(
        engine,
        uvm,
        PageTable(),
        memory,
        PcieModel(uvm),
        eviction or SerializedEviction(),
        make_prefetcher(uvm),
        valid,
    )
    return engine, runtime


def test_dense_faults_trigger_prefetch():
    engine, runtime = make_runtime(frames=None)
    # 5 of 8 region pages faulted: the tree fetches the remaining 3.
    for page in range(5):
        runtime.raise_fault(page, None)
    engine.run()
    record = runtime.batch_stats.records[0]
    assert record.demand_pages == 5
    assert record.prefetched_pages == 3
    for page in range(8):
        assert runtime.page_table.is_resident(page)


def test_prefetch_capped_at_free_frames():
    # 6 frames, 5 demand pages -> at most 1 prefetched page, never an
    # eviction forced by prefetching.
    engine, runtime = make_runtime(frames=6)
    for page in range(5):
        runtime.raise_fault(page, None)
    engine.run()
    record = runtime.batch_stats.records[0]
    assert record.demand_pages == 5
    assert record.prefetched_pages <= 1
    assert record.evicted_pages == 0


def test_prefetch_zero_headroom():
    engine, runtime = make_runtime(frames=5)
    for page in range(5):
        runtime.raise_fault(page, None)
    engine.run()
    assert runtime.batch_stats.records[0].prefetched_pages == 0


def test_prefetch_respects_valid_pages():
    valid = set(range(6))
    engine, runtime = make_runtime(frames=None, valid=valid)
    for page in range(5):
        runtime.raise_fault(page, None)
    engine.run()
    assert runtime.page_table.resident_set() <= frozenset(valid)


def test_ue_preemptive_eviction_inside_fht_window():
    from repro.sim.timeline import Timeline

    engine, runtime = make_runtime(frames=2, eviction=UnobtrusiveEviction())
    timeline = Timeline()
    runtime.timeline = timeline
    for page in (100, 101):
        runtime.raise_fault(page, None)
    engine.run()
    for page in (102, 103):
        runtime.raise_fault(page, None)
    engine.run()
    batch = timeline.of_kind("batch_begin")[-1]
    first_migration = timeline.of_kind("first_migration")[-1]
    evicts = [
        e for e in timeline.of_kind("evict_start") if e.time >= batch.time
    ]
    # The preemptive eviction starts right at batch begin and its transfer
    # fits within the fault handling window.
    assert evicts[0].time == batch.time
    assert (
        evicts[0].time + runtime.pcie.d2h_cycles_per_page
        <= first_migration.time
    )


def test_batch_demand_counts_exclude_prefetch():
    engine, runtime = make_runtime(frames=None)
    for page in range(5):
        runtime.raise_fault(page, None)
    engine.run()
    record = runtime.batch_stats.records[0]
    assert record.migrated_pages == record.demand_pages + record.prefetched_pages
