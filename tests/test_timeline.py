"""Tests for the timeline tracer and its Figure-2-style rendering."""

import pytest

from repro import GpuUvmSimulator, build_workload, systems
from repro.sim.timeline import Timeline, render_batches, summarize


class TestTimeline:
    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Timeline(max_events=0)

    def test_record_and_query(self):
        tl = Timeline()
        tl.record(10, "batch_begin", value=0)
        tl.record(20, "page_arrival", detail="0x10")
        assert len(tl) == 2
        assert tl.kinds() == {"batch_begin", "page_arrival"}
        assert tl.of_kind("page_arrival")[0].time == 20

    def test_between(self):
        tl = Timeline()
        for t in (5, 15, 25):
            tl.record(t, "x")
        assert len(tl.between(10, 20)) == 1

    def test_cap_drops_and_counts(self):
        tl = Timeline(max_events=2)
        tl.record(0, "x")
        tl.record(1, "x")
        with pytest.warns(RuntimeWarning, match="max_events=2"):
            tl.record(2, "x")
        # Only the first drop warns; later drops are silent but counted.
        tl.record(3, "x")
        tl.record(4, "x")
        assert len(tl) == 2
        assert tl.dropped == 3
        assert summarize(tl)["dropped"] == 3

    def test_summarize(self):
        tl = Timeline()
        tl.record(1, "a")
        tl.record(2, "a")
        tl.record(3, "b")
        assert summarize(tl) == {"a": 2, "b": 1}

    def test_of_kind_returns_independent_copy(self):
        tl = Timeline()
        tl.record(1, "a")
        first = tl.of_kind("a")
        first.append("junk")
        assert len(tl.of_kind("a")) == 1
        assert tl.of_kind("missing") == []

    def test_between_with_out_of_order_records(self):
        """A future-dated record (e.g. first_migration) must not lose
        events for the bisect fast path."""
        tl = Timeline()
        tl.record(10, "batch_begin", value=0)
        tl.record(500, "first_migration", value=0)  # ahead of the clock
        tl.record(20, "page_arrival")
        tl.record(30, "page_arrival")
        got = tl.between(15, 40)
        assert [e.time for e in got] == [20, 30]
        assert [e.time for e in tl.between(0, 1000)] == [10, 500, 20, 30]

    def test_large_timeline_queries_stay_fast(self):
        """Regression for the O(n)-scan ``of_kind``/``between``: on a
        100k-event timeline, per-kind queries and windowed lookups must
        answer from the index, i.e. orders of magnitude under a full
        scan per call.  Budget: 2000 queries well under a second."""
        import time as _time

        tl = Timeline(max_events=100_000)
        for t in range(100_000):
            tl.record(t, f"kind{t % 50}")
        start = _time.perf_counter()
        for _ in range(1000):
            assert len(tl.of_kind("kind7")) == 2000
        for lo in range(0, 100_000, 100):
            tl.between(lo, lo + 10)
        elapsed = _time.perf_counter() - start
        assert elapsed < 1.0, f"indexed queries took {elapsed:.2f}s"

    def test_render_batches_on_large_timeline(self):
        """render_batches used to re-scan the whole timeline per lane."""
        import time as _time

        tl = Timeline(max_events=200_000)
        for i in range(1000):
            t = i * 100
            tl.record(t, "batch_begin", value=i)
            tl.record(t + 20, "first_migration", value=i)
            for k in range(40):
                tl.record(t + 30 + k, "page_arrival")
            tl.record(t + 80, "evict_start")
            tl.record(t + 90, "batch_end", value=i)
        start = _time.perf_counter()
        text = render_batches(tl, max_batches=50)
        elapsed = _time.perf_counter() - start
        assert "B49" in text
        assert elapsed < 1.0, f"render took {elapsed:.2f}s"


class TestRendering:
    def test_empty_timeline(self):
        assert "no batches" in render_batches(Timeline())

    def test_render_contains_lanes_and_markers(self):
        tl = Timeline()
        tl.record(0, "batch_begin", value=0)
        tl.record(100, "first_migration", value=0)
        tl.record(150, "evict_start")
        tl.record(200, "page_arrival")
        tl.record(300, "batch_end", value=0)
        text = render_batches(tl)
        assert "B0" in text
        assert "#" in text
        assert "=" in text
        assert "*" in text
        assert "!" in text

    def test_render_respects_max_batches(self):
        tl = Timeline()
        for i in range(10):
            tl.record(i * 100, "batch_begin", value=i)
            tl.record(i * 100 + 50, "batch_end", value=i)
        text = render_batches(tl, max_batches=3)
        assert "B2" in text
        assert "B3" not in text


class TestSimulatorIntegration:
    def test_simulation_populates_timeline(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload)
        timeline = Timeline()
        GpuUvmSimulator(workload, config, timeline=timeline).run()
        counts = summarize(timeline)
        assert counts["batch_begin"] == counts["batch_end"]
        assert counts["page_arrival"] > 0
        assert counts["evict_start"] > 0

    def test_arrivals_match_migrated_pages(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload)
        timeline = Timeline()
        result = GpuUvmSimulator(workload, config, timeline=timeline).run()
        assert summarize(timeline)["page_arrival"] == result.migrated_pages

    def test_batch_events_are_ordered(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload)
        timeline = Timeline()
        GpuUvmSimulator(workload, config, timeline=timeline).run()
        begins = {e.value: e.time for e in timeline.of_kind("batch_begin")}
        ends = {e.value: e.time for e in timeline.of_kind("batch_end")}
        firsts = {e.value: e.time for e in timeline.of_kind("first_migration")}
        for index, begin in begins.items():
            assert begin <= firsts[index] <= ends[index]

    def test_no_timeline_by_default(self):
        workload = build_workload("KCORE", scale="tiny")
        config = systems.BASELINE.configure(workload)
        sim = GpuUvmSimulator(workload, config)
        sim.run()
        assert sim.timeline is None
