"""Unit tests for the hardware fault buffer."""

import pytest

from repro.errors import ConfigError
from repro.uvm.fault_buffer import FaultBuffer, FaultEntry


def entry(page, time=0):
    return FaultEntry(page=page, warp=None, time=time)


def test_rejects_nonpositive_capacity():
    with pytest.raises(ConfigError):
        FaultBuffer(0)


def test_push_and_drain_preserves_order():
    buf = FaultBuffer(8)
    for p in (3, 1, 2):
        buf.push(entry(p))
    drained = buf.drain()
    assert [e.page for e in drained] == [3, 1, 2]
    assert buf.empty


def test_drain_resets_page_index():
    buf = FaultBuffer(8)
    buf.push(entry(5))
    assert buf.contains_page(5)
    buf.drain()
    assert not buf.contains_page(5)


def test_overflow_drops_and_counts():
    buf = FaultBuffer(2)
    assert buf.push(entry(1))
    assert buf.push(entry(2))
    assert not buf.push(entry(3))
    assert buf.overflow_faults == 1
    assert len(buf) == 2
    assert buf.total_faults == 3


def test_peak_occupancy():
    buf = FaultBuffer(8)
    for p in range(5):
        buf.push(entry(p))
    buf.drain()
    buf.push(entry(9))
    assert buf.peak_occupancy == 5


def test_duplicate_pages_occupy_entries():
    # Multiple warps faulting on the same page each take a buffer slot.
    buf = FaultBuffer(4)
    for _ in range(3):
        buf.push(entry(7))
    assert len(buf) == 3
    assert buf.contains_page(7)


class _AlwaysDup:
    """Minimal chaos stand-in: duplicate every non-replay push."""

    def fault_entry_action(self, page, now):
        return "dup"


def test_chaos_duplicate_counts_toward_peak_occupancy():
    # Regression: the chaos-dup append used to skip the peak_occupancy
    # update, under-reporting buffer pressure whenever the high-water
    # mark was set by a duplicated entry.
    buf = FaultBuffer(8)
    buf.chaos = _AlwaysDup()
    assert buf.push(entry(1))
    assert len(buf) == 2  # duplicate + original
    assert buf.chaos_duplicated == 1
    assert buf.peak_occupancy == 2


def test_chaos_duplicate_that_fills_buffer_updates_peak_and_gauge():
    from repro.obs import Observability

    # The duplicate fills the only slot, so the original overflows; the
    # peak and the live occupancy gauge must still reflect the duplicate.
    buf = FaultBuffer(1)
    buf.chaos = _AlwaysDup()
    session = Observability("full")
    buf.obs = session
    assert not buf.push(entry(3))
    assert len(buf) == 1
    assert buf.peak_occupancy == 1
    assert buf.overflow_faults == 1
    assert buf.chaos_duplicated == 1
    assert session.metrics.gauge("fault_buffer.occupancy").value == 1
