"""Checkpoint/restore correctness: bit-identical resume + failure paths.

The contract under test (see ``docs/robustness.md``): restoring a
batch-boundary checkpoint and running to completion produces the *same*
``SimulationResult`` — every scalar, every batch record, every extra —
as the uninterrupted run, for both warp backends and under chaos
injection.  The property test lets Hypothesis pick the boundary; the
negative tests cover truncated files, version skew, fingerprint skew,
bad magic, and the quarantine policy.
"""

from __future__ import annotations

import pickle
import warnings
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import GpuUvmSimulator, build_workload, systems
from repro.chaos.config import parse_chaos_spec
from repro.checkpoint import (
    MAGIC,
    SCHEMA_VERSION,
    SimCheckpoint,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
    try_load,
)
from repro.errors import CheckpointError, SimulationError

#: Every perturbation injector at once (``fail-batch`` is excluded: it
#: exists to abort runs deliberately, so it has nothing to resume).
CHAOS_SPEC = (
    "fault-latency:prob=0.2,mult=2,add=500;"
    "dma-stall:prob=0.1;"
    "drop-fault:prob=0.05;"
    "dup-fault:prob=0.05;"
    "evict-contend:prob=0.1,mult=2"
)


def _build(backend: str, chaos: bool):
    workload = build_workload("KCORE", scale="tiny", seed=0)
    config = systems.TO_UE.configure(workload, ratio=0.5)
    if chaos:
        config = replace(config, chaos=parse_chaos_spec(CHAOS_SPEC, seed=11))
    return GpuUvmSimulator(workload, config, backend=backend)


#: (backend, chaos) -> (reference result, list of per-batch checkpoints).
#: Built lazily so each cell simulates exactly twice across the module.
_CORPUS: dict = {}


def _corpus(backend: str, chaos: bool):
    key = (backend, chaos)
    if key not in _CORPUS:
        reference = _build(backend, chaos).run()
        sim = _build(backend, chaos)
        snaps = []
        sim.engine.checkpoint_hook = lambda: snaps.append(sim.snapshot())
        checkpointed = sim.run()
        assert checkpointed == reference, (
            "enabling checkpoints changed the simulation"
        )
        assert snaps, "no batch-boundary checkpoints captured"
        _CORPUS[key] = (reference, snaps)
    return _CORPUS[key]


# ----------------------------------------------------------------------
# Bit-identical restore
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
@pytest.mark.parametrize("backend", ["object", "soa"])
def test_mid_run_restore_is_bit_identical(backend: str, chaos: bool):
    reference, snaps = _corpus(backend, chaos)
    middle = snaps[len(snaps) // 2]
    resumed = middle.restore().resume()
    assert resumed == reference


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(choice=st.integers(min_value=0), backend=st.sampled_from(["object", "soa"]))
def test_property_any_boundary_restores_identically(choice: int, backend: str):
    """Hypothesis picks the batch boundary (including the chaos corpus):
    restore + resume from *any* checkpoint must reproduce the reference
    bits — chaos RNG streams, warp state, and queues all included."""
    reference, snaps = _corpus(backend, chaos=True)
    checkpoint = snaps[choice % len(snaps)]
    resumed = checkpoint.restore().resume()
    assert resumed == reference


def test_restored_sim_reports_restored_lifecycle():
    _, snaps = _corpus("soa", chaos=False)
    sim = snaps[len(snaps) // 2].restore()
    state = sim.state_snapshot()
    assert state["lifecycle"] in ("idle", "interrupt", "preprocess", "migrate")
    assert state["run_loop"]["state"] == "idle"  # detached for restart
    with pytest.raises(SimulationError, match="single-use"):
        sim.run()  # a restored sim resumes; it does not restart


def test_resume_requires_restored_instance():
    sim = _build("soa", chaos=False)
    with pytest.raises(SimulationError, match="checkpoint-restored"):
        sim.resume()


# ----------------------------------------------------------------------
# Disk round trip + enable_checkpoints
# ----------------------------------------------------------------------
def test_disk_round_trip(tmp_path):
    reference, _ = _corpus("soa", chaos=False)
    sim = _build("soa", chaos=False)
    sim.enable_checkpoints(tmp_path, every=4)
    result = sim.run()
    assert result == reference
    assert sim.checkpoint_writes > 0
    assert sim.checkpoint_write_seconds >= 0.0
    assert sim.last_checkpoint_path is not None
    resumed = restore_checkpoint(sim.last_checkpoint_path).resume()
    assert resumed == reference


def test_checkpoint_meta_describes_run(tmp_path):
    sim = _build("object", chaos=False)
    path = save_checkpoint(sim, tmp_path / "pre.ckpt")
    checkpoint = load_checkpoint(path)
    meta = checkpoint.meta
    assert meta["magic"] == MAGIC
    assert meta["schema"] == SCHEMA_VERSION
    assert meta["workload"] == "KCORE"
    assert meta["backend"] == "object"
    assert meta["engine_now"] == 0
    assert "batches" in meta and "fingerprint" in meta
    assert "KCORE" in repr(checkpoint)


def test_enable_checkpoints_rejects_bad_interval(tmp_path):
    sim = _build("soa", chaos=False)
    with pytest.raises(Exception, match="positive"):
        sim.enable_checkpoints(tmp_path, every=0)


def test_capture_reports_unpicklable_state():
    sim = _build("soa", chaos=False)
    sim.not_picklable = lambda: None
    with pytest.raises(CheckpointError, match="not picklable"):
        SimCheckpoint.capture(sim)


# ----------------------------------------------------------------------
# Negative paths: truncation, skew, quarantine
# ----------------------------------------------------------------------
@pytest.fixture
def checkpoint_file(tmp_path):
    sim = _build("soa", chaos=False)
    return save_checkpoint(sim, tmp_path / "cell.ckpt")


def test_truncated_file_is_quarantined(checkpoint_file):
    blob = checkpoint_file.read_bytes()
    checkpoint_file.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError, match="quarantined"):
        load_checkpoint(checkpoint_file)
    assert not checkpoint_file.exists()
    assert checkpoint_file.with_name(
        checkpoint_file.name + ".corrupt"
    ).exists()


def test_garbage_file_is_quarantined(checkpoint_file):
    checkpoint_file.write_bytes(b"not a pickle at all")
    with pytest.raises(CheckpointError, match="quarantined"):
        load_checkpoint(checkpoint_file)
    assert not checkpoint_file.exists()


def test_bad_magic_is_quarantined(checkpoint_file):
    envelope = {"meta": {"magic": "other-tool"}, "payload": b""}
    checkpoint_file.write_bytes(pickle.dumps(envelope))
    with pytest.raises(CheckpointError, match="magic"):
        load_checkpoint(checkpoint_file)
    assert not checkpoint_file.exists()


def _reskew(path, **meta_overrides):
    envelope = pickle.loads(path.read_bytes())
    envelope["meta"].update(meta_overrides)
    path.write_bytes(pickle.dumps(envelope))


def test_schema_skew_errors_without_quarantine(checkpoint_file):
    _reskew(checkpoint_file, schema=SCHEMA_VERSION + 1)
    with pytest.raises(CheckpointError, match="schema version"):
        load_checkpoint(checkpoint_file)
    # The file is intact — a matching reader may still want it.
    assert checkpoint_file.exists()
    assert not checkpoint_file.with_name(
        checkpoint_file.name + ".corrupt"
    ).exists()


def test_fingerprint_skew_errors_without_quarantine(checkpoint_file):
    _reskew(checkpoint_file, fingerprint="0" * 64)
    with pytest.raises(CheckpointError, match="different source tree"):
        load_checkpoint(checkpoint_file)
    assert checkpoint_file.exists()
    # ... and can be loaded anyway when the caller opts out.
    assert load_checkpoint(checkpoint_file, check_fingerprint=False)


def test_try_load_degrades_to_none_with_warning(checkpoint_file):
    _reskew(checkpoint_file, schema=SCHEMA_VERSION + 1)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert try_load(checkpoint_file) is None
    assert any("unusable checkpoint" in str(w.message) for w in caught)


def test_try_load_missing_file(tmp_path):
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("ignore")
        assert try_load(tmp_path / "absent.ckpt") is None


def test_load_unreadable_path_raises(tmp_path):
    with pytest.raises(CheckpointError, match="unreadable"):
        load_checkpoint(tmp_path / "absent.ckpt")
