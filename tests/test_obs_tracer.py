"""Tests for the span/instant tracer: nesting, scopes, drop accounting."""

import pytest

from repro.obs.tracer import Tracer


class TestSpans:
    def test_complete_span(self):
        tr = Tracer()
        tr.complete("batches", "batch 0", 100, 250, pages=3)
        (event,) = tr.events
        assert event.ph == "X"
        assert event.ts == 100
        assert event.dur == 150
        assert event.args == {"pages": 3}

    def test_complete_clamps_negative_duration(self):
        tr = Tracer()
        tr.complete("t", "backwards", 50, 20)
        assert tr.events[0].dur == 0

    def test_begin_end_nesting(self):
        tr = Tracer()
        tr.begin("t", "outer", 0)
        tr.begin("t", "inner", 10)
        assert tr.open_spans("t") == ["outer", "inner"]
        tr.end("t", 20)
        assert tr.open_spans("t") == ["outer"]
        tr.end("t", 30)
        assert tr.open_spans("t") == []
        phases = [(e.ph, e.name, e.ts) for e in tr.events]
        assert phases == [
            ("B", "outer", 0),
            ("B", "inner", 10),
            ("E", "inner", 20),
            ("E", "outer", 30),
        ]

    def test_end_without_begin_raises(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="without begin"):
            tr.end("t", 5)

    def test_nesting_is_per_track(self):
        tr = Tracer()
        tr.begin("a", "span-a", 0)
        tr.begin("b", "span-b", 1)
        tr.end("a", 2)  # closes span-a, not span-b
        assert tr.open_spans("a") == []
        assert tr.open_spans("b") == ["span-b"]

    def test_instant(self):
        tr = Tracer()
        tr.instant("eviction", "evict", 42, page="0x10")
        (event,) = tr.events
        assert event.ph == "i"
        assert event.dur is None
        assert event.args == {"page": "0x10"}

    def test_events_keep_record_order(self):
        tr = Tracer()
        tr.instant("a", "first", 10)
        tr.complete("b", "second", 0, 5)
        tr.instant("a", "third", 20)
        assert [e.name for e in tr.events] == ["first", "second", "third"]


class TestScopesAndTracks:
    def test_scope_zero_is_wall_harness(self):
        tr = Tracer()
        assert tr.scopes()[0] == ("harness", "wall")
        assert tr.scope == 0

    def test_open_and_set_scope(self):
        tr = Tracer()
        sid = tr.open_scope("BFS-TWC")
        assert tr.scopes()[sid] == ("BFS-TWC", "sim")
        previous = tr.set_scope(sid)
        assert previous == 0
        tr.instant("uvm", "x", 1)
        assert tr.events[0].scope == sid

    def test_set_unknown_scope_raises(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.set_scope(7)

    def test_open_scope_rejects_unknown_domain(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.open_scope("x", domain="gpu")

    def test_tids_assigned_in_first_use_order_per_scope(self):
        tr = Tracer()
        sid = tr.open_scope("run")
        tr.set_scope(sid)
        tr.instant("batches", "a", 0)
        tr.instant("dma.h2d", "b", 1)
        tr.instant("batches", "c", 2)
        assert tr.tracks()[(sid, "batches")] == 0
        assert tr.tracks()[(sid, "dma.h2d")] == 1

    def test_same_track_name_distinct_across_scopes(self):
        tr = Tracer()
        s1 = tr.open_scope("run1")
        s2 = tr.open_scope("run2")
        tr.set_scope(s1)
        tr.instant("batches", "x", 0)
        tr.set_scope(s2)
        tr.instant("batches", "y", 0)
        assert (s1, "batches") in tr.tracks()
        assert (s2, "batches") in tr.tracks()
        assert tr.of_track("batches", scope=s1)[0].name == "x"
        assert tr.of_track("batches", scope=s2)[0].name == "y"
        assert tr.track_names() == {"batches"}


class TestWallHelpers:
    def test_wall_span_records_in_scope_zero(self):
        tr = Tracer()
        sid = tr.open_scope("run")
        tr.set_scope(sid)  # wall helpers must still hit scope 0
        with tr.wall_span("experiments", "cell", group="fig11"):
            pass
        (event,) = tr.events
        assert event.scope == 0
        assert event.ph == "X"
        assert event.dur >= 0
        assert event.args == {"group": "fig11"}

    def test_wall_span_records_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.wall_span("experiments", "boom"):
                raise RuntimeError("boom")
        assert len(tr.events) == 1

    def test_wall_instant(self):
        tr = Tracer()
        tr.wall_instant("experiments", "marker")
        assert tr.events[0].scope == 0
        assert tr.events[0].ph == "i"


class TestRingBuffer:
    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_drop_accounting(self):
        tr = Tracer(max_events=3)
        for i in range(10):
            tr.instant("t", f"e{i}", i)
        assert len(tr) == 3
        assert tr.dropped == 7
        # Oldest events are kept (drop-newest), matching Timeline.
        assert [e.name for e in tr.events] == ["e0", "e1", "e2"]

    def test_dropped_events_do_not_register_tracks(self):
        tr = Tracer(max_events=1)
        tr.instant("kept", "a", 0)
        tr.instant("lost", "b", 1)
        assert tr.track_names() == {"kept"}
