"""Persistent run-cache behaviour: hits, invalidation, key coverage,
quota/LRU eviction, and in-flight pinning (shared by the CLI and the
serving layer)."""

import dataclasses
import os

import pytest

from repro import systems
from repro.experiments import common


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    """Isolate the persistent cache in a temp dir with clean state."""
    common.clear_run_cache()
    common.reset_cache_stats()
    common.set_cache_dir(tmp_path)
    common.set_cache_enabled(True)
    yield tmp_path
    common.set_cache_dir(None)
    common.set_cache_enabled(True)
    common.clear_run_cache()


def _run(**kwargs):
    return common.run_system(systems.BASELINE, "KCORE", scale="tiny", **kwargs)


class TestPersistentCache:
    def test_result_survives_memo_clear(self, cache):
        first = _run()
        assert common.cache_stats()["misses"] == 1
        assert list(cache.glob("*.pkl")), "no cache entry written"

        common.clear_run_cache()  # drop the in-process memo only
        second = _run()
        stats = common.cache_stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 1, "disk hit must not re-run"
        assert second is not first  # unpickled copy...
        assert second.exec_cycles == first.exec_cycles  # ...same numbers
        assert second.batch_stats.num_batches == first.batch_stats.num_batches

    def test_memo_hit_returns_same_object(self, cache):
        assert _run() is _run()

    def test_param_change_misses(self, cache):
        _run()
        common.clear_run_cache()
        _run(ratio=0.9)
        assert common.cache_stats()["misses"] == 2

    def test_code_version_change_invalidates(self, cache, monkeypatch):
        first = _run()
        common.clear_run_cache()
        monkeypatch.setattr(common, "_cache_version", lambda: "other-code")
        second = _run()
        stats = common.cache_stats()
        assert stats["disk_hits"] == 0
        assert stats["misses"] == 2
        assert second.exec_cycles == first.exec_cycles  # still deterministic

    def test_no_cache_skips_read_and_write(self, cache):
        a = _run(use_cache=False)
        assert not list(cache.glob("*.pkl"))
        b = _run(use_cache=False)
        assert b is not a
        assert common.cache_stats()["memory_hits"] == 0

    def test_cache_disabled_globally(self, cache):
        common.set_cache_enabled(False)
        _run()
        assert not list(cache.glob("*.pkl"))
        # The in-process memo still works with the disk layer off.
        assert _run() is not None
        assert common.cache_stats()["memory_hits"] == 1

    def test_clear_persistent_cache(self, cache):
        _run()
        assert common.clear_persistent_cache() >= 1
        assert not list(cache.glob("*.pkl"))

    def test_corrupt_entry_is_ignored(self, cache):
        _run()
        for path in cache.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        common.clear_run_cache()
        result = _run()  # silently recomputes
        assert result.exec_cycles > 0


class TestCacheKey:
    def test_max_events_is_part_of_the_key(self, cache):
        """Regression for the missing-``max_events`` key bug: a cached
        full run must not satisfy a lower-capped call — the capped call
        still hits its cap (the simulator raises on incomplete runs)
        instead of silently returning the full-run result."""
        from repro.errors import CellFailure, SimulationError

        full = _run()
        with pytest.raises(CellFailure) as excinfo:
            _run(max_events=200)
        assert isinstance(excinfo.value.__cause__, SimulationError)
        common.clear_run_cache()
        full_again = _run()
        assert full_again.events_processed == full.events_processed
        assert full_again.exec_cycles == full.exec_cycles

    def test_memo_key_distinguishes_all_parameters(self):
        base = common.RunSpec("KCORE", preset=systems.BASELINE).resolved()
        variants = [
            dataclasses.replace(base, preset=systems.TO),
            dataclasses.replace(base, workload="PR"),
            dataclasses.replace(base, scale="small"),
            dataclasses.replace(base, ratio=0.9),
            dataclasses.replace(base, fault_handling_cycles=30_000),
            dataclasses.replace(base, seed=1),
            dataclasses.replace(base, max_events=1000),
        ]
        keys = {common._memo_key(spec) for spec in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_workload_name_is_case_insensitive(self):
        upper = common.RunSpec("KCORE", preset=systems.BASELINE).resolved()
        lower = common.RunSpec("kcore", preset=systems.BASELINE).resolved()
        assert common._memo_key(upper) == common._memo_key(lower)

    def test_distinct_configs_do_not_collide(self, cache):
        from repro.workloads.registry import build_workload

        wl = build_workload("KCORE", scale="tiny")
        cfg_a = systems.BASELINE.configure(wl, ratio=common.half_ratio("tiny"))
        cfg_b = dataclasses.replace(
            cfg_a,
            uvm=dataclasses.replace(cfg_a.uvm, prefetcher="none"),
        )
        a = common.run_config("KCORE", cfg_a, scale="tiny")
        b = common.run_config("KCORE", cfg_b, scale="tiny")
        assert common.cache_stats()["misses"] == 2
        assert a.prefetched_pages > 0
        assert b.prefetched_pages == 0

    def test_run_config_hits_cache(self, cache):
        from repro.workloads.registry import build_workload

        wl = build_workload("KCORE", scale="tiny")
        cfg = systems.BASELINE.configure(wl, ratio=common.half_ratio("tiny"))
        first = common.run_config("KCORE", cfg, scale="tiny")
        common.clear_run_cache()
        second = common.run_config("KCORE", cfg, scale="tiny")
        assert common.cache_stats()["disk_hits"] == 1
        assert second.exec_cycles == first.exec_cycles


@pytest.fixture()
def quota_cache(cache):
    """The isolated cache dir plus guaranteed quota/pin cleanup."""
    yield cache
    common.set_cache_quota(None)
    common._PINNED_PATHS.clear()


def _spec(seed=0):
    return common.RunSpec(
        "KCORE", preset=systems.BASELINE, scale="tiny", seed=seed
    ).resolved()


def _fill(quota_cache, seeds):
    """Run one cell per seed; return {seed: cache file} oldest-first."""
    files = {}
    for age, seed in enumerate(seeds):
        common.run_cells([_spec(seed)], jobs=1)
        (new,) = [p for p in quota_cache.glob("*.pkl") if p not in files.values()]
        files[seed] = new
        # Deterministic LRU order regardless of filesystem timestamp
        # granularity: older seeds get strictly older mtimes.
        stamp = 1_000_000 + age * 1000
        os.utime(new, (stamp, stamp))
    return files


class TestCacheQuota:
    def test_quota_validation(self):
        with pytest.raises(ValueError):
            common.set_cache_quota(0)
        with pytest.raises(ValueError):
            common.set_cache_quota(-1)
        common.set_cache_quota(None)  # unbounded is fine
        assert common.cache_quota() is None

    def test_unbounded_by_default_evicts_nothing(self, quota_cache):
        _fill(quota_cache, [0, 1, 2])
        assert common.enforce_cache_quota() == 0
        assert len(list(quota_cache.glob("*.pkl"))) == 3

    def test_lru_eviction_drops_oldest_first(self, quota_cache):
        files = _fill(quota_cache, [0, 1, 2])
        one_entry = max(p.stat().st_size for p in files.values())
        common.set_cache_quota(one_entry)
        evicted = common.enforce_cache_quota()
        assert evicted == 2
        survivors = set(quota_cache.glob("*.pkl"))
        assert survivors == {files[2]}, "newest entry must survive"
        assert common.cache_stats()["evictions"] == 2

    def test_disk_read_refreshes_recency(self, quota_cache):
        files = _fill(quota_cache, [0, 1])
        # A disk hit on the *older* entry must mark it recently used.
        common.clear_run_cache()
        common.run_cells([_spec(0)], jobs=1)
        assert common.cache_stats()["disk_hits"] == 1
        assert files[0].stat().st_mtime > files[1].stat().st_mtime
        common.set_cache_quota(max(p.stat().st_size for p in files.values()))
        common.enforce_cache_quota()
        assert set(quota_cache.glob("*.pkl")) == {files[0]}

    def test_store_enforces_quota_automatically(self, quota_cache):
        files = _fill(quota_cache, [0])
        common.set_cache_quota(files[0].stat().st_size)
        common.run_cells([_spec(1)], jobs=1)  # store pushes past the quota
        remaining = list(quota_cache.glob("*.pkl"))
        assert len(remaining) == 1
        assert common.cache_stats()["evictions"] >= 1

    def test_pinned_entry_survives_eviction(self, quota_cache):
        files = _fill(quota_cache, [0, 1])
        key = common._memo_key(_spec(0))
        common.pin_cache_entry(key)
        try:
            common.set_cache_quota(1)  # nothing fits
            common.enforce_cache_quota()
            survivors = set(quota_cache.glob("*.pkl"))
            assert files[0] in survivors, "pinned entry was evicted"
            assert files[1] not in survivors
        finally:
            common.unpin_cache_entry(key)
        assert common.pinned_cache_entries() == 0
        common.enforce_cache_quota()
        assert not list(quota_cache.glob("*.pkl"))

    def test_pins_are_refcounted(self, quota_cache):
        key = common._memo_key(_spec(0))
        common.pin_cache_entry(key)
        common.pin_cache_entry(key)
        assert common.pinned_cache_entries() == 1
        common.unpin_cache_entry(key)
        assert common.pinned_cache_entries() == 1, "one pin must remain"
        common.unpin_cache_entry(key)
        assert common.pinned_cache_entries() == 0
        common.unpin_cache_entry(key)  # over-unpin is harmless
        assert common.pinned_cache_entries() == 0


class TestProbeCache:
    def test_miss_returns_none_and_counts_nothing(self, cache):
        assert common.probe_cache(_spec()) is None
        stats = common.cache_stats()
        assert stats["misses"] == 0
        assert stats["memory_hits"] == 0

    def test_memory_and_disk_probe_hits(self, cache):
        common.run_cells([_spec()], jobs=1)
        hit = common.probe_cache(_spec())
        assert hit is not None
        assert common.cache_stats()["memory_hits"] == 1
        common.clear_run_cache()
        assert common.probe_cache(_spec()) is not None
        assert common.cache_stats()["disk_hits"] == 1

    def test_probe_respects_use_cache(self, cache):
        common.run_cells([_spec()], jobs=1)
        assert common.probe_cache(_spec(), use_cache=False) is None
