"""Unit-level checks of the remaining figure modules (reduced inputs).

The benchmarks assert the paper's claims over all 11 workloads; these
tests pin the modules' mechanics on one or two workloads so failures
localise quickly.  The shared run cache makes repeats cheap.
"""

import pytest

from repro.experiments import (
    fig05_context_switch,
    fig08_eviction_impact,
    fig11_speedup,
    fig12_num_batches,
    fig13_batch_size,
    fig14_batch_time,
    fig15_premature_eviction,
    fig18_fault_latency_sweep,
    sec65_context_cost,
)

ONE = ("KCORE",)
TWO = ("KCORE", "BFS-TWC")


class TestFigureModules:
    def test_fig5_rows_and_average(self):
        result = fig05_context_switch.run(scale="tiny", workloads=ONE)
        assert [label for label, _ in result.rows] == ["KCORE", "AVERAGE"]
        assert result.value("KCORE", "relative_perf") > 0

    def test_fig8_normalisation(self):
        result = fig08_eviction_impact.run(scale="tiny", workloads=ONE)
        base = result.value("KCORE", "baseline")
        ideal = result.value("KCORE", "ideal_eviction")
        assert 0 < base <= 1.0
        assert ideal >= base * 0.99

    def test_fig11_baseline_column_is_one(self):
        result = fig11_speedup.run(scale="tiny", workloads=ONE)
        assert result.value("KCORE", "BASELINE") == 1.0
        for column in result.columns:
            assert result.value("KCORE", column) > 0

    def test_fig12_and_fig13_consistency(self):
        batches = fig12_num_batches.run(scale="tiny", workloads=TWO)
        sizes = fig13_batch_size.run(scale="tiny", workloads=TWO)
        for name in TWO:
            # Fewer batches <=> bigger batches: the relative percentages
            # move in opposite directions around 100 when total migrated
            # pages stay comparable (loose coupling check).
            b = batches.value(name, "relative_pct")
            s = sizes.value(name, "relative_pct")
            assert b > 0 and s > 0

    def test_fig14_baseline_normalised_to_one(self):
        result = fig14_batch_time.run(scale="tiny", workloads=ONE)
        assert result.value("KCORE", "baseline") == 1.0

    def test_fig15_percentages(self):
        result = fig15_premature_eviction.run(scale="tiny", workloads=ONE)
        assert 0.0 <= result.value("KCORE", "baseline_pct") <= 100.0

    def test_fig18_three_series(self):
        result = fig18_fault_latency_sweep.run(
            scale="tiny", workloads=ONE, fht_values=(20_000, 50_000)
        )
        assert result.columns == ["to", "ue", "to_ue"]
        assert len(result.rows) == 2
        for _, values in result.rows:
            assert values["to_ue"] > 0

    def test_sec65_reference_row(self):
        result = sec65_context_cost.run(
            scale="tiny", workload="KCORE", multipliers=(0.0, 1.0)
        )
        assert result.value("x1", "normalised") == 1.0


class TestRunnerFlags:
    def test_output_flag_writes_tables(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(
            ["table1", "--scale", "tiny", "--output", str(tmp_path)]
        ) == 0
        assert (tmp_path / "table1.txt").exists()
        capsys.readouterr()

    def test_chart_flag_draws(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--scale", "tiny", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_ablation_id_resolves(self, capsys):
        from repro.experiments.runner import main

        assert main(["abl-to-degree", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "degree=0" in out
