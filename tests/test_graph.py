"""Unit tests for the graph substrate."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.graph import (
    CsrGraph,
    bfs_levels,
    generate_rmat,
    generate_uniform,
)


def tiny_graph():
    # 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 3
    offsets = np.array([0, 2, 3, 4, 4])
    edges = np.array([1, 2, 2, 3])
    return CsrGraph(offsets, edges)


class TestCsrGraph:
    def test_basic_shape(self):
        g = tiny_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_degrees(self):
        g = tiny_graph()
        assert g.degree(0) == 2
        assert g.degree(3) == 0
        assert list(g.degrees()) == [2, 1, 1, 0]

    def test_neighbors(self):
        g = tiny_graph()
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(3)) == []

    def test_neighbor_slice(self):
        g = tiny_graph()
        assert g.neighbor_slice(1) == (2, 3)

    def test_default_weights(self):
        g = tiny_graph()
        assert g.weights.shape == g.edges.shape
        assert np.all(g.weights == 1)

    def test_rejects_bad_offsets(self):
        with pytest.raises(WorkloadError):
            CsrGraph(np.array([1, 2]), np.array([0]))
        with pytest.raises(WorkloadError):
            CsrGraph(np.array([0, 2, 1]), np.array([0, 0]))

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(WorkloadError):
            CsrGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(WorkloadError):
            CsrGraph(np.array([0, 1, 1]), np.array([1]), weights=np.array([1, 2]))


class TestGenerators:
    def test_rmat_shape(self):
        g = generate_rmat(256, avg_degree=4, seed=1)
        assert g.num_vertices == 256
        assert 0 < g.num_edges <= 256 * 4

    def test_rmat_deterministic(self):
        a = generate_rmat(128, 4, seed=7)
        b = generate_rmat(128, 4, seed=7)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.edges, b.edges)

    def test_rmat_seed_changes_graph(self):
        a = generate_rmat(128, 4, seed=1)
        b = generate_rmat(128, 4, seed=2)
        assert not (
            np.array_equal(a.offsets, b.offsets)
            and np.array_equal(a.edges, b.edges)
        )

    def test_rmat_power_law_skew(self):
        # R-MAT should concentrate edges on hub vertices far more than a
        # uniform graph does.
        rmat = generate_rmat(1024, 8, seed=3)
        uniform = generate_uniform(1024, 8, seed=3)
        assert rmat.degrees().max() > 2 * uniform.degrees().max()

    def test_no_self_loops_or_duplicates(self):
        g = generate_rmat(256, 8, seed=5)
        for v in range(g.num_vertices):
            neighbors = list(g.neighbors(v))
            assert v not in neighbors
            assert len(neighbors) == len(set(neighbors))

    def test_uniform_shape(self):
        g = generate_uniform(256, 4, seed=1)
        assert g.num_vertices == 256

    def test_rejects_bad_params(self):
        with pytest.raises(WorkloadError):
            generate_rmat(1, 4)
        with pytest.raises(WorkloadError):
            generate_uniform(100, 0)


class TestBfsLevels:
    def test_levels_on_tiny_graph(self):
        levels = bfs_levels(tiny_graph(), source=0)
        assert list(levels) == [0, 1, 1, 2]

    def test_unreachable_marked(self):
        offsets = np.array([0, 1, 1, 1])
        edges = np.array([1])
        levels = bfs_levels(CsrGraph(offsets, edges), source=0)
        assert levels[2] == -1

    def test_bad_source_rejected(self):
        with pytest.raises(WorkloadError):
            bfs_levels(tiny_graph(), source=99)

    def test_level_monotonicity(self):
        g = generate_rmat(128, 8, seed=2)
        levels = bfs_levels(g, source=0)
        # No edge may skip a level: level(dst) <= level(src) + 1.
        for v in range(g.num_vertices):
            if levels[v] < 0:
                continue
            for u in g.neighbors(v):
                assert 0 <= levels[u] <= levels[v] + 1
