"""Unit tests for the GPU memory manager."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.uvm.memory_manager import GpuMemoryManager
from repro.uvm.replacement import AgedLru


def make(frames=4):
    return GpuMemoryManager(frames, AgedLru())


def test_rejects_zero_frames():
    with pytest.raises(ConfigError):
        make(0)


def test_unlimited_mode():
    mm = GpuMemoryManager(None, AgedLru())
    assert mm.unlimited
    assert not mm.at_capacity
    assert mm.evictions_needed(1000) == 0
    frames = {mm.allocate(p, now=0) for p in range(100)}
    assert len(frames) == 100  # distinct frames forever


def test_allocate_assigns_distinct_frames():
    mm = make(4)
    frames = {mm.allocate(p, 0) for p in range(4)}
    assert frames == {0, 1, 2, 3}
    assert mm.at_capacity


def test_allocate_when_full_raises():
    mm = make(1)
    mm.allocate(1, 0)
    with pytest.raises(SimulationError):
        mm.allocate(2, 0)


def test_double_allocate_raises():
    mm = make(2)
    mm.allocate(1, 0)
    with pytest.raises(SimulationError):
        mm.allocate(1, 0)


def test_evict_release_allocate_cycle():
    mm = make(1)
    mm.allocate(1, now=0)
    lifetime = mm.evict(1, now=500)
    assert lifetime == 500
    mm.release_frame(0)
    mm.allocate(2, now=600)
    assert mm.is_resident(2)
    assert not mm.is_resident(1)


def test_evictions_needed():
    mm = make(4)
    mm.allocate(1, 0)
    assert mm.evictions_needed(2) == 0
    assert mm.evictions_needed(5) == 2


def test_victim_is_lru_head():
    mm = make(3)
    for p in (10, 11, 12):
        mm.allocate(p, 0)
    assert mm.pick_victim() == 10


def test_pinned_page_cannot_be_evicted():
    mm = make(2)
    mm.allocate(1, 0)
    mm.pin(1)
    with pytest.raises(SimulationError):
        mm.evict(1, 10)
    assert not mm.has_victim()
    mm.unpin(1)
    assert mm.has_victim()


def test_evict_nonresident_raises():
    with pytest.raises(SimulationError):
        make().evict(9, 0)


def test_premature_eviction_tracking():
    mm = make(1)
    mm.allocate(1, 0)
    mm.on_fault(1)  # first fault: page never evicted -> not premature
    assert mm.premature_refaults == 0
    mm.evict(1, 100)
    mm.release_frame(0)
    mm.on_fault(1)  # refault after eviction -> premature
    assert mm.premature_refaults == 1
    assert mm.premature_eviction_rate == pytest.approx(1.0)


def test_premature_rate_zero_without_evictions():
    assert make().premature_eviction_rate == 0.0


def test_eviction_log_records_lifetimes():
    mm = make(2)
    mm.allocate(1, 0)
    mm.allocate(2, 50)
    mm.evict(1, 100)
    mm.evict(2, 100)
    assert mm.eviction_log == [(100, 100), (100, 50)]


def test_on_access_routes_to_policy():
    from repro.uvm.replacement import AccessLru

    mm = GpuMemoryManager(3, AccessLru())
    for p in (1, 2, 3):
        mm.allocate(p, 0)
    mm.on_access(1)
    assert mm.pick_victim() == 2
