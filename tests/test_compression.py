"""Tests for the compression models and per-page transfer durations."""

import pytest

from repro.errors import ConfigError
from repro.gpu.config import UvmConfig
from repro.uvm.compression import CapacityCompression, CompressionModel
from repro.uvm.transfer import PcieModel


class TestCompressionModel:
    def test_rejects_sub_unity_mean(self):
        with pytest.raises(ConfigError):
            CompressionModel(mean_ratio=0.8)

    def test_deterministic_per_page(self):
        model = CompressionModel(2.0, spread=0.5, seed=1)
        assert model.ratio_for_page(7) == model.ratio_for_page(7)

    def test_ratio_within_spread(self):
        model = CompressionModel(2.0, spread=0.5)
        for page in range(100):
            assert 1.5 <= model.ratio_for_page(page) <= 2.5

    def test_zero_spread_is_constant(self):
        model = CompressionModel(1.5, spread=0.0)
        assert model.ratio_for_page(1) == 1.5
        assert model.ratio_for_page(99) == 1.5

    def test_compressed_bytes(self):
        model = CompressionModel(2.0, spread=0.0)
        assert model.compressed_bytes(0, 4096) == 2048

    def test_excessive_spread_clamped(self):
        model = CompressionModel(1.2, spread=5.0)
        for page in range(50):
            assert model.ratio_for_page(page) >= 1.0


class TestCapacityCompression:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CapacityCompression(0.5, 8)
        with pytest.raises(ConfigError):
            CapacityCompression(1.25, -1)

    def test_effective_frames_floor(self):
        assert CapacityCompression(1.1, 0).effective_frames(5) == 5


class TestPerPageTransferDurations:
    def test_uncompressed_durations_constant(self):
        pcie = PcieModel(UvmConfig(page_size=4096))
        assert pcie.h2d_duration(1) == pcie.h2d.cycles_per_page
        assert pcie.h2d_duration(2) == pcie.h2d.cycles_per_page

    def test_compressed_durations_vary_per_page(self):
        pcie = PcieModel(UvmConfig(page_size=4096, pcie_compression=True))
        durations = {pcie.h2d_duration(p) for p in range(64)}
        assert len(durations) > 1

    def test_compressed_always_faster_than_raw(self):
        raw = PcieModel(UvmConfig(page_size=4096))
        squeezed = PcieModel(UvmConfig(page_size=4096, pcie_compression=True))
        for page in range(64):
            assert squeezed.h2d_duration(page) < raw.h2d_duration(page)

    def test_migrate_page_uses_page_duration(self):
        pcie = PcieModel(UvmConfig(page_size=4096, pcie_compression=True))
        start, finish = pcie.migrate_page(0, page=5)
        assert finish - start == pcie.h2d_duration(5)

    def test_evict_page_without_identity_uses_constant(self):
        pcie = PcieModel(UvmConfig(page_size=4096))
        start, finish = pcie.evict_page(0)
        assert finish - start == pcie.d2h.cycles_per_page
