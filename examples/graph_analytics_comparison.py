#!/usr/bin/env python3
"""Compare every memory-management system across graph-analytics workloads.

The scenario from the paper's introduction: a suite of graph computations
(traversal, ranking, colouring, shortest paths) whose working sets exceed
GPU memory.  For each workload the script runs all six systems of
Figure 11 and prints a speedup table plus the batch-level explanation.

    python examples/graph_analytics_comparison.py --workloads BFS-TTC PR KCORE
"""

import argparse

from repro import GpuUvmSimulator, build_workload, systems, workload_names
from repro.workloads.registry import SCALES

SYSTEMS = (
    systems.BASELINE,
    systems.BASELINE_PCIE_COMPRESSION,
    systems.TO,
    systems.UE,
    systems.TO_UE,
    systems.ETC,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=["BFS-TTC", "BFS-TWC", "PR", "KCORE"],
        choices=workload_names("irregular"),
    )
    args = parser.parse_args()
    ratio = SCALES[args.scale].half_memory_ratio

    header = f"{'workload':10s}" + "".join(
        f"{preset.name:>16s}" for preset in SYSTEMS
    )
    print(header)
    print("-" * len(header))

    averages = {preset.name: [] for preset in SYSTEMS}
    for name in args.workloads:
        workload = build_workload(name, scale=args.scale)
        runs = {}
        for preset in SYSTEMS:
            config = preset.configure(workload, ratio=ratio)
            runs[preset.name] = GpuUvmSimulator(workload, config).run()
        base = runs["BASELINE"].exec_cycles
        cells = []
        for preset in SYSTEMS:
            speedup = base / runs[preset.name].exec_cycles
            averages[preset.name].append(speedup)
            cells.append(f"{speedup:>15.2f}x")
        print(f"{name:10s}" + "".join(cells))

    print("-" * len(header))
    cells = []
    for preset in SYSTEMS:
        vals = averages[preset.name]
        cells.append(f"{sum(vals) / len(vals):>15.2f}x")
    print(f"{'AVERAGE':10s}" + "".join(cells))
    print(
        "\nThe paper's headline: TO+UE averages ~2x over the prefetching "
        "baseline and beats ETC by ~79% on these irregular workloads."
    )


if __name__ == "__main__":
    main()
