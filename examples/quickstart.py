#!/usr/bin/env python3
"""Quickstart: simulate BFS under UVM demand paging, with and without the
paper's batch-aware mechanisms.

Runs breadth-first search on a synthetic power-law graph whose footprint
does not fit in GPU memory, first on the prefetching baseline and then
with Thread Oversubscription + Unobtrusive Eviction (the paper's TO+UE),
and prints the batch-level view of why TO+UE wins.

    python examples/quickstart.py [--scale tiny|small|medium]
"""

import argparse

from repro import GpuUvmSimulator, build_workload, systems
from repro.workloads.registry import SCALES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    parser.add_argument("--workload", default="BFS-TTC")
    args = parser.parse_args()

    ratio = SCALES[args.scale].half_memory_ratio
    workload = build_workload(args.workload, scale=args.scale)
    print(
        f"{workload.name}: {workload.footprint_pages} pages "
        f"({workload.footprint_bytes // 1024} KB), "
        f"{len(workload.kernels)} kernel launches, {workload.num_ops} warp ops"
    )
    print(f"GPU memory capped at {ratio:.0%} of the footprint\n")

    results = {}
    for preset in (systems.BASELINE, systems.TO_UE):
        config = preset.configure(workload, ratio=ratio)
        results[preset.name] = GpuUvmSimulator(workload, config).run()

    base, to_ue = results["BASELINE"], results["TO+UE"]
    for name, result in results.items():
        stats = result.batch_stats
        print(f"--- {name} ---")
        print(f"  execution time:        {result.exec_cycles:>12,} cycles")
        print(f"  batches processed:     {stats.num_batches:>12,}")
        print(f"  avg batch size:        {stats.mean_batch_pages:>12.1f} pages")
        print(f"  avg batch time:        {stats.mean_processing_time:>12,.0f} cycles")
        print(f"  pages migrated:        {result.migrated_pages:>12,}")
        print(f"  pages evicted:         {result.evicted_pages:>12,}")
        print(f"  premature evictions:   {result.premature_eviction_rate:>12.1%}")
        print(f"  context switches:      {result.context_switches:>12,}")
        print()

    print(f"TO+UE speedup over baseline: {to_ue.speedup_over(base):.2f}x")
    print(
        "batches: "
        f"{base.batch_stats.num_batches} -> {to_ue.batch_stats.num_batches}, "
        "avg batch pages: "
        f"{base.batch_stats.mean_batch_pages:.1f} -> "
        f"{to_ue.batch_stats.mean_batch_pages:.1f}"
    )


if __name__ == "__main__":
    main()
