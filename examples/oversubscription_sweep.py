#!/usr/bin/env python3
"""Sweep the memory oversubscription ratio (the Figure 17 scenario).

Shows how the cost of demand paging explodes as the GPU memory shrinks
relative to the application footprint, and how Unobtrusive Eviction's
benefit scales with eviction pressure.

    python examples/oversubscription_sweep.py --workload BFS-TWC
"""

import argparse

from repro import GpuUvmSimulator, build_workload, systems, workload_names
from repro.workloads.registry import SCALES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    parser.add_argument(
        "--workload", default="BFS-TTC", choices=workload_names("irregular")
    )
    parser.add_argument(
        "--ratios",
        nargs="*",
        type=float,
        default=[0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
    )
    args = parser.parse_args()

    workload = build_workload(args.workload, scale=args.scale)
    print(
        f"{args.workload}: footprint {workload.footprint_pages} pages; "
        "sweeping GPU memory capacity\n"
    )

    # Reference: everything resident.
    full_cfg = systems.BASELINE.configure(workload, ratio=1.0)
    full_cycles = GpuUvmSimulator(workload, full_cfg).run().exec_cycles

    print(
        f"{'ratio':>6} {'frames':>7} {'baseline cycles':>16} "
        f"{'rel. time':>10} {'UE speedup':>11} {'evictions':>10}"
    )
    for ratio in args.ratios:
        base_cfg = systems.BASELINE.configure(workload, ratio=ratio)
        ue_cfg = systems.UE.configure(workload, ratio=ratio)
        base = GpuUvmSimulator(workload, base_cfg).run()
        ue = GpuUvmSimulator(workload, ue_cfg).run()
        frames = base_cfg.uvm.frames or workload.footprint_pages
        print(
            f"{ratio:>6.1f} {frames:>7} {base.exec_cycles:>16,} "
            f"{base.exec_cycles / full_cycles:>9.2f}x "
            f"{base.exec_cycles / ue.exec_cycles:>10.2f}x "
            f"{base.evicted_pages:>10,}"
        )

    print(
        "\nShape to look for (paper Figure 17): execution time grows "
        "steeply as the ratio falls, and UE's speedup grows with it "
        "(1.0x when everything fits)."
    )


if __name__ == "__main__":
    main()
