#!/usr/bin/env python3
"""Visualise the batch processing mechanism (the paper's Figure 2).

Attaches a timeline tracer to a simulation and renders the first few
fault batches as ASCII lanes: the GPU-runtime fault-handling window,
the migration stream, eviction starts and page arrivals.  Run it twice —
baseline vs. TO+UE — and watch the batches get bigger and fewer while the
eviction marks slide out of the migration stream.

    python examples/batch_timeline.py --workload BFS-TWC
"""

import argparse

from repro import GpuUvmSimulator, build_workload, systems, workload_names
from repro.sim.timeline import Timeline, render_batches, summarize
from repro.workloads.registry import SCALES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    parser.add_argument(
        "--workload", default="BFS-TTC", choices=workload_names("irregular")
    )
    parser.add_argument("--batches", type=int, default=6,
                        help="number of batch lanes to draw")
    args = parser.parse_args()

    workload = build_workload(args.workload, scale=args.scale)
    ratio = SCALES[args.scale].half_memory_ratio

    for preset in (systems.BASELINE, systems.TO_UE):
        timeline = Timeline()
        config = preset.configure(workload, ratio=ratio)
        result = GpuUvmSimulator(workload, config, timeline=timeline).run()
        print(f"=== {preset.name} ({args.workload}) ===")
        print(render_batches(timeline, max_batches=args.batches))
        counts = summarize(timeline)
        print(
            f"totals: {counts.get('batch_begin', 0)} batches, "
            f"{counts.get('page_arrival', 0)} migrations, "
            f"{counts.get('evict_start', 0)} evictions, "
            f"exec {result.exec_cycles:,} cycles"
        )
        print()


if __name__ == "__main__":
    main()
