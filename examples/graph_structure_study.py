#!/usr/bin/env python3
"""How graph structure changes UVM behaviour: power-law vs. uniform.

The paper's irregular workloads run on real (power-law) graphs, where a
few hub vertices concentrate edge traffic.  This study builds the same
BFS on an R-MAT graph and on a uniform-random graph of identical size,
runs both under the baseline and TO+UE, and compares the batch anatomy —
hub concentration changes page sharing, and with it premature evictions
and the value of the paper's mechanisms.

    python examples/graph_structure_study.py --vertices 2048 --degree 8
"""

import argparse

from repro import GpuUvmSimulator, systems
from repro.workloads.bfs import build_bfs_ttc
from repro.workloads.graph import generate_rmat, generate_uniform

PAGE_SIZE = 4096
RATIO = 0.8


def study(label, graph) -> None:
    workload = build_bfs_ttc(graph, page_size=PAGE_SIZE)
    workload.num_sms_hint = 1
    degrees = graph.degrees()
    print(
        f"--- {label}: {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges, max degree {int(degrees.max())}, "
        f"{workload.footprint_pages} pages ---"
    )
    results = {}
    for preset in (systems.BASELINE, systems.TO_UE):
        config = preset.configure(workload, ratio=RATIO)
        results[preset.name] = GpuUvmSimulator(workload, config).run()
    for name, result in results.items():
        print(f"[{name}]")
        print(result.summary())
    speedup = results["BASELINE"].exec_cycles / results["TO+UE"].exec_cycles
    print(f"TO+UE speedup on {label}: {speedup:.2f}x\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=2048)
    parser.add_argument("--degree", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    study("R-MAT (power law)",
          generate_rmat(args.vertices, args.degree, seed=args.seed))
    study("uniform random",
          generate_uniform(args.vertices, args.degree, seed=args.seed))
    print(
        "Hubs concentrate destination-property traffic onto fewer hot "
        "pages, so the power-law graph typically sees better page reuse "
        "per batch — and different headroom for TO+UE — than the uniform "
        "one."
    )


if __name__ == "__main__":
    main()
