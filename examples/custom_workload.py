#!/usr/bin/env python3
"""Bring your own workload: hand-built traces through the public API.

Builds a synthetic "pointer chasing over a hash table" workload — a warp
alternates between a hot index array (sequential) and cold table buckets
(strided, pseudo-random) — and studies how each memory-management system
copes.  Demonstrates the trace-building API surface a downstream user
would adopt: AddressSpace, WarpOpsBuilder, BlockTrace/KernelTrace, and
the system presets.
"""

import argparse

from repro import GpuUvmSimulator, systems
from repro.gpu.occupancy import KernelResources
from repro.vm.address_space import AddressSpace
from repro.workloads.trace import (
    BlockTrace,
    KernelTrace,
    WarpOpsBuilder,
    Workload,
)

PAGE_SIZE = 4096
WARPS_PER_BLOCK = 4


def build_hash_probe_workload(num_blocks=12, probes_per_warp=40,
                              table_pages=64) -> Workload:
    """Each warp streams an index array and probes scattered buckets.

    The 32 lanes of a probe hit a handful of distinct table pages (buckets
    cluster into cache-line-sized groups), which keeps the per-op working
    set realistic — a warp whose every access spans 32 pages would need
    them all resident simultaneously and thrash any finite memory.
    """
    vas = AddressSpace(PAGE_SIZE)
    index = vas.allocate("index", num_blocks * WARPS_PER_BLOCK * probes_per_warp, 8)
    table = vas.allocate("table", table_pages * PAGE_SIZE // 64, 64)
    buckets = table.num_elements

    blocks = []
    for b in range(num_blocks):
        warp_ops = []
        for w in range(WARPS_PER_BLOCK):
            ops = WarpOpsBuilder(compute_cycles=12)
            lane_base = (b * WARPS_PER_BLOCK + w) * probes_per_warp
            for i in range(probes_per_warp):
                # Sequential read of the next 32 indices (coalesced).
                ops.access([index.addr_unchecked(lane_base + i)])
                # 32 bucket probes scattered over ~4 distinct pages.
                group = ((lane_base + i) * 2654435761) % buckets
                probe = [
                    table.addr_unchecked(
                        (group + lane * 7 + (lane % 4) * (buckets // 4)) % buckets
                    )
                    for lane in range(32)
                ]
                ops.access(probe)
            warp_ops.append(ops.build())
        blocks.append(BlockTrace(warp_ops))

    kernel = KernelTrace(
        "hash-probe",
        blocks,
        KernelResources(threads_per_block=32 * WARPS_PER_BLOCK,
                        registers_per_thread=56),
    )
    return Workload("HASH-PROBE", vas, [kernel], num_sms_hint=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ratio", type=float, default=0.8,
                        help="GPU memory as a fraction of the footprint")
    args = parser.parse_args()

    workload = build_hash_probe_workload()
    print(
        f"{workload.name}: {workload.footprint_pages} pages, "
        f"{workload.num_ops} warp ops, GPU memory at {args.ratio:.0%}\n"
    )

    presets = (systems.BASELINE, systems.TO, systems.UE, systems.TO_UE)
    base_cycles = None
    for preset in presets:
        config = preset.configure(workload, ratio=args.ratio)
        result = GpuUvmSimulator(workload, config).run()
        base_cycles = base_cycles or result.exec_cycles
        stats = result.batch_stats
        print(
            f"{preset.name:9s} {result.exec_cycles:>12,} cycles "
            f"({base_cycles / result.exec_cycles:4.2f}x)  "
            f"batches={stats.num_batches:<5} "
            f"pages/batch={stats.mean_batch_pages:6.1f}  "
            f"evictions={result.evicted_pages}"
        )


if __name__ == "__main__":
    main()
