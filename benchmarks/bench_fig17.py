"""Figure 17 — sensitivity to the memory oversubscription ratio."""

from repro.experiments import fig17_oversubscription_sweep


def test_fig17_ratio_sensitivity(benchmark, bench_scale, experiment_cache,
                                 save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig17_oversubscription_sweep, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    times = result.column("relative_exec_time")
    speedups = result.column("ue_speedup")
    # Execution time falls (or holds) as memory grows; the smallest memory
    # is the slowest and full memory is 1.0 by construction.
    assert times[0] == max(times)
    assert times[-1] == 1.0
    assert times[0] > 1.5
    # UE speedup is exactly 1.0 when everything fits...
    assert speedups[-1] == 1.0
    # ...and grows with eviction pressure: best speedup occurs at a
    # smaller ratio than full memory.
    assert max(speedups) > 1.02
    assert speedups.index(max(speedups)) < len(speedups) - 1
