"""Figure 1 — working set vs. active GPU core count.

Shape: regular workloads' working set scales with SM count (tiny 1-SM
working set); irregular graph workloads stay nearly flat because most
pages are shared across cores.
"""

from repro.experiments import fig01_working_set


def test_fig1_working_set_scaling(benchmark, bench_scale, experiment_cache,
                                  save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig01_working_set, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    summary = fig01_working_set.sharing_summary(result)
    # Regular: 1-SM working set is a small fraction of the 16-SM one.
    assert summary["regular_1sm"] < 0.35
    # Irregular: most pages shared -> 1-SM working set stays large.
    assert summary["irregular_1sm"] > 2 * summary["regular_1sm"]
    # Every curve is normalised to 1.0 at 16 SMs and non-decreasing overall.
    for label, values in result.rows:
        curve = [values[col] for col in result.columns]
        assert curve[-1] == 1.0, label
        assert curve[0] <= curve[-1] + 1e-9, label
