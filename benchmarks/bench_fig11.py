"""Figure 11 — the headline speedup comparison."""

from repro.experiments import fig11_speedup


def test_fig11_headline_speedups(benchmark, bench_scale, experiment_cache,
                                 save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig11_speedup, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    avg = {col: result.value("AVERAGE", col) for col in result.columns}

    # TO+UE is the best system on average and clearly beats the baseline.
    assert avg["TO+UE"] > 1.15
    assert avg["TO+UE"] >= max(avg["TO"], avg["UE"]) - 0.02
    # UE contributes more than TO (paper: +61% vs +22%).
    assert avg["UE"] > avg["TO"]
    # TO+UE outperforms ETC (paper: by 79%).
    assert avg["TO+UE"] > avg["ETC"] - 0.02
    # PCIe compression helps only modestly compared to TO+UE.
    assert avg["BASELINE+PCIeC"] < avg["TO+UE"] + 0.05
    # Sanity: baseline column is exactly 1.
    assert avg["BASELINE"] == 1.0
