"""Supervision must cost <2% on clean runs — the pool's zero-cost gate.

What supervision adds to a *clean* (crash-free) cell, on the worker's
critical path:

* one daemon heartbeat thread waking every ``heartbeat`` seconds to send
  a tiny tuple over the pipe (GIL steal + one pipe write per wakeup);
* one lock acquisition around each pipe write (once per cell result).

Everything else — the supervisor's ``connection.wait`` loop, health
checks, lifecycle bookkeeping — runs in the *parent* process and cannot
slow the simulation down.

A full end-to-end pool A/B cannot resolve 2% here: run-to-run noise on a
shared machine is an order of magnitude above it (the same batch swings
±25%).  So, exactly like ``bench_obs_overhead``, the gate measures the
mechanism directly: a tight pure-Python work loop (the shape of the
simulator hot path) timed with and without a production-cadence
heartbeat thread sending over a real pipe.  The steal rate is the
supervision overhead; it is asserted below 2%.  An end-to-end pool
timing is printed for context (informational, no threshold).
"""

from __future__ import annotations

import multiprocessing
import threading
import time

from repro import systems
from repro.experiments.common import RunSpec
from repro.pool import PoolConfig, SupervisedPool

#: Production heartbeat cadence (PoolConfig default).
HEARTBEAT = 0.25

#: Seconds of busy work per timed measurement — several hundred heartbeat
#: periods' worth would be ideal, but 2s x 7 repeats already averages 8
#: wakeups per sample, and interleaving cancels drift.
WORK_SECONDS = 2.0

REPEATS = 7


def _busy(iterations: int) -> float:
    """Time a fixed amount of dict churn (event-loop hot-path shape)."""
    table: dict[int, int] = {}
    start = time.perf_counter()
    for count in range(iterations):
        table[count & 1023] = count
        if count & 8191 == 0 and len(table) > 512:
            table.clear()
    return time.perf_counter() - start


def _calibrate(target_seconds: float) -> int:
    """Iterations that take roughly ``target_seconds`` on this machine."""
    probe = 1_000_000
    elapsed = _busy(probe)
    return max(probe, int(probe * target_seconds / max(elapsed, 1e-9)))


class _HeartbeatRig:
    """A faithful replica of the worker's heartbeat thread + drain."""

    def __init__(self, cadence: float) -> None:
        self.reader, self.writer = multiprocessing.Pipe(duplex=False)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._cadence = cadence
        self._thread = threading.Thread(
            target=self._beat, name="bench-heartbeat", daemon=True
        )
        self._drainer = threading.Thread(
            target=self._drain, name="bench-drain", daemon=True
        )
        self._thread.start()
        self._drainer.start()

    def _beat(self) -> None:
        while not self._stop.is_set():
            time.sleep(self._cadence)
            try:
                with self._lock:
                    self.writer.send(("hb", 1))
            except (OSError, ValueError):
                return

    def _drain(self) -> None:
        try:
            while self.reader.recv():
                pass
        except (EOFError, OSError):
            pass

    def close(self) -> None:
        self._stop.set()
        self.writer.close()
        self.reader.close()


def test_heartbeat_steal_below_two_percent():
    iterations = _calibrate(WORK_SECONDS)
    # Paired rounds: each round times the identical fixed workload bare
    # and with the heartbeat rig, back to back.  The *minimum* paired
    # delta is the steal estimate — shared-machine noise only ever
    # inflates a round, so the cleanest round bounds the real cost,
    # while a genuinely expensive heartbeat thread (busy-waiting, tight
    # cadence) would inflate every round and still trip the gate.
    deltas = []
    _busy(iterations // 4)  # warm-up
    for _ in range(REPEATS):
        bare = _busy(iterations)
        rig = _HeartbeatRig(HEARTBEAT)
        try:
            beating = _busy(iterations)
        finally:
            rig.close()
        deltas.append((beating - bare) / bare)

    steal = max(0.0, min(deltas))
    print(
        f"\nheartbeat steal over {REPEATS} paired rounds of "
        f"{iterations:,} iterations: "
        f"{', '.join(f'{d:+.2%}' for d in deltas)} -> {steal:.3%}"
    )
    assert steal < 0.02, (
        f"heartbeat thread steals {steal:.3%} of the worker's runtime; "
        f"the supervision budget is 2%"
    )


def test_end_to_end_pool_timing_informational():
    """Same cells through supervised and unsupervised pools (no gate —
    shared-machine noise exceeds the 2% being asserted above; this
    exists so regressions in the *dispatch* path are still visible in CI
    logs)."""
    cells = [
        RunSpec("KCORE", preset=preset, scale="tiny", seed=seed).resolved()
        for preset in (systems.BASELINE, systems.TO)
        for seed in (0, 1)
    ]
    supervised = SupervisedPool(PoolConfig(workers=1, heartbeat=HEARTBEAT))
    bare = SupervisedPool(PoolConfig(workers=1, heartbeat=None))
    try:
        supervised.start()
        bare.start()
        supervised.run(list(cells))  # warm both workers
        bare.run(list(cells))
        on_times, off_times = [], []
        for _ in range(5):
            start = time.perf_counter()
            supervised.run(list(cells))
            on_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            bare.run(list(cells))
            off_times.append(time.perf_counter() - start)
    finally:
        supervised.close()
        bare.close()
    stats = supervised.stats()
    assert stats["crashes"] == 0 and stats["sigkills"] == 0, (
        "a clean-run benchmark must not see supervisor interventions"
    )
    on, off = min(on_times), min(off_times)
    print(
        f"\nend-to-end (informational): supervised {on * 1e3:.1f} ms vs "
        f"bare {off * 1e3:.1f} ms per {len(cells)}-cell batch "
        f"({(on - off) / off:+.1%})"
    )
