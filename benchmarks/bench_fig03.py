"""Figure 3 — per-page fault handling time falls as batches grow."""

from repro.experiments import fig03_per_page_time


def test_fig3_per_page_time_amortisation(benchmark, bench_scale,
                                         experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig03_per_page_time, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    assert result.rows, "no batches recorded"
    means = fig03_per_page_time.bucket_means(result, num_buckets=4)
    assert len(means) >= 2
    # Smallest-batch bucket is the most expensive per page; largest is the
    # cheapest (hyperbolic amortisation of the fixed fault-handling cost).
    per_page = [us for _, us in means]
    assert per_page[0] == max(per_page)
    assert per_page[-1] == min(per_page)
