"""Figure 16 — batch-size distribution shift and the efficiency curve."""

from repro.experiments import fig16_batch_distribution


def test_fig16_distribution_shifts_right(benchmark, bench_scale,
                                         experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig16_batch_distribution, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    base_mean = fig16_batch_distribution.mean_bucket("baseline_frac", result)
    to_mean = fig16_batch_distribution.mean_bucket("to_frac", result)
    # TO shifts batch-size mass toward larger buckets.
    assert to_mean >= base_mean
    # Both distributions are proper (fractions sum to ~1).
    for column in ("baseline_frac", "to_frac"):
        total = sum(values[column] for _, values in result.rows)
        assert abs(total - 1.0) < 1e-6, column
    # Efficiency generally rises with batch size: the biggest bucket with
    # data beats the smallest.
    effs = [
        values["efficiency"]
        for _, values in result.rows
        if values["efficiency"] > 0
    ]
    if len(effs) >= 2:
        assert effs[-1] > effs[0]
