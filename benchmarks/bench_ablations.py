"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these bound the knobs the paper fixes (replacement
policy, prefetcher, write-back policy, D2H bandwidth, TO degree) and
assert the directional expectations.
"""

from repro.experiments import ablations


def test_ablation_replacement_policy(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: ablations.run_replacement(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    # Access-ordered LRU (hot pages protected) should not lose badly to
    # the driver's aged LRU on average.
    assert result.value("AVERAGE", "baseline") > 0.8


def test_ablation_prefetcher(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: ablations.run_prefetch(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    # The tree prefetcher actually prefetches...
    assert result.value("AVERAGE", "prefetched_pages") > 0
    # ...and does not cripple the baseline on average.
    assert result.value("AVERAGE", "baseline") > 0.75


def test_ablation_dirty_tracking(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: ablations.run_dirty(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    skip = result.value("AVERAGE", "skip_clean")
    ue = result.value("AVERAGE", "ue")
    ue_skip = result.value("AVERAGE", "ue_plus_skip")
    # Skipping clean write-backs helps the serialized baseline...
    assert skip > 1.0
    # ...but UE, which hides evictions entirely, subsumes it.
    assert ue >= skip - 0.05
    assert abs(ue_skip - ue) < 0.1 * ue


def test_ablation_d2h_bandwidth(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: ablations.run_bandwidth(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    speedups = result.column("ue_speedup")
    # UE wins at every bandwidth point...
    assert all(s > 1.0 for s in speedups)
    # ...and wins *most* when D2H is slow (the baseline's serialized
    # evictions are then most expensive).
    assert speedups[0] == max(speedups)


def test_ablation_runahead_vs_to(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: ablations.run_runahead(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    # Section 4.1's claim: runahead is the weaker way to grow batches.
    # With honest (dependence-limited) probing it must not decisively beat
    # TO on average, and unlike TO it may backfire on individual
    # workloads.
    assert result.value("AVERAGE", "runahead") <= (
        result.value("AVERAGE", "to") + 0.1
    )
    # Both mechanisms do reduce batch counts overall.
    assert result.value("AVERAGE", "to_batches_pct") < 100.0


def test_ablation_to_degree(benchmark, bench_scale, save_table):
    result = benchmark.pedantic(
        lambda: ablations.run_to_degree(scale=bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    # Degree 0 = pure UE: no context switches.
    assert result.value("degree=0", "context_switches") == 0
    # Some oversubscription beats none for this workload.
    degree_speedups = result.column("speedup")
    assert max(degree_speedups[1:]) >= degree_speedups[0] - 0.02
