"""Chaos/invariants/watchdog disabled must cost <2% — the ISSUE criterion.

Strategy mirrors ``bench_obs_overhead``: every robustness hook is an
``is not None`` pointer guard (engine watchdog tick, runtime chaos and
invariant hooks, fault-buffer chaos action, DMA stall perturbation), so
the disabled path adds only guard evaluations.  One guard is too small to
resolve inside a real run (noise swamps it), so we measure it directly:

1. A **pre-watchdog engine replica** (the ``run`` body as of the obs PR,
   inlined below) races the reference :class:`repro.sim.HeapEngine` over
   the same synthetic event storm; the delta is the per-event guard cost
   on the loop architecture that carries per-event guards.  (The
   production :class:`~repro.sim.Engine` hoists the watchdog test out of
   its fast loop entirely when none is attached, so the estimate is an
   upper bound for it.)
2. A real tiny run with robustness off gives events and wall-clock.
   Estimated overhead = guard cost x guard sites x events / runtime.

The estimate is asserted below 2%.  The enabled-path ratios (invariants
checking every batch boundary; a five-injector chaos session) are also
measured and printed for ``docs/robustness.md`` — informational only,
enabled modes are *supposed* to pay for their checking.
"""

from __future__ import annotations

import time

from repro import GpuUvmSimulator, build_workload, obs, systems
from repro.chaos.config import parse_chaos_spec
from repro.sim.engine import HeapEngine

#: Upper bound on robustness ``is not None`` guards per engine event:
#: the watchdog tick in the run loop, plus the runtime/fault-buffer/DMA
#: chaos and invariant hooks (which fire per fault or per batch — far
#: less than once per event; one slot each is already generous).
GUARD_SITES_PER_EVENT = 4

#: Events in the synthetic storm used to resolve the per-event guard cost.
STORM_EVENTS = 200_000


class PreWatchdogEngine(HeapEngine):
    """The event loop exactly as it shipped before the watchdog hook."""

    def run(self, until=None, max_events=None) -> None:
        if self._running:
            raise Exception("engine.run() is not reentrant")
        self._running = True
        start_time = self.now
        try:
            processed = 0
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            if not self._queue or self._queue[0][0] > until:
                self.now = until
        if self.obs is not None and processed:
            self.obs.tracer.complete(
                "engine", "event loop", start_time, self.now, events=processed
            )


def drain_storm(engine, n: int = STORM_EVENTS) -> float:
    """Time draining n self-rescheduling events; returns seconds."""
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.schedule(1, tick)

    engine.schedule(0, tick)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def interleaved_mins(fn_a, fn_b, repeats: int = 7) -> tuple[float, float]:
    """Best-of timings for two rivals, alternating so drift hits both."""
    a_times, b_times = [], []
    for _ in range(repeats):
        a_times.append(fn_a())
        b_times.append(fn_b())
    return min(a_times), min(b_times)


def timed_tiny_run(chaos=None, check_invariants=False) -> tuple[float, int]:
    """(wall seconds, engine events) for one KCORE tiny run."""
    workload = build_workload("KCORE", scale="tiny", seed=0)
    config = systems.by_name("TO+UE").configure(
        workload, chaos=chaos, check_invariants=check_invariants
    )
    sim = GpuUvmSimulator(workload, config)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, sim.engine.events_processed


def test_robustness_off_overhead_below_two_percent():
    assert obs.current() is None, "a leaked obs session would skew timing"

    bare, guarded = interleaved_mins(
        lambda: drain_storm(PreWatchdogEngine()), lambda: drain_storm(HeapEngine())
    )
    guard_cost_per_event = max(0.0, guarded - bare) / STORM_EVENTS

    off_seconds, events = min(timed_tiny_run() for _ in range(3))
    estimated = guard_cost_per_event * GUARD_SITES_PER_EVENT * events
    overhead = estimated / off_seconds

    print(
        f"\nguard cost: {guard_cost_per_event * 1e9:.1f} ns/event "
        f"(pre-watchdog {bare * 1e3:.1f} ms vs current {guarded * 1e3:.1f} ms "
        f"over {STORM_EVENTS:,} events)"
    )
    print(
        f"robustness off: {off_seconds * 1e3:.0f} ms, {events:,} engine "
        f"events, estimated guard overhead {overhead:.3%} "
        f"({GUARD_SITES_PER_EVENT} guard sites/event)"
    )
    assert overhead < 0.02, (
        f"robustness-off guard overhead {overhead:.3%} exceeds the 2% budget"
    )


def test_enabled_mode_ratios_informational():
    """Measure (and print) what checking costs when ON — no threshold."""
    off_seconds, _ = timed_tiny_run()
    inv_seconds, _ = timed_tiny_run(check_invariants=True)
    chaos = parse_chaos_spec(
        "fault-latency:prob=0.5,mult=2;dma-stall:prob=0.2;"
        "drop-fault:prob=0.05;dup-fault:prob=0.1;evict-contend:prob=0.3",
        seed=42,
    )
    chaos_seconds, _ = timed_tiny_run(chaos=chaos)
    print(
        f"\ninvariants on: {inv_seconds * 1e3:.0f} ms vs off "
        f"{off_seconds * 1e3:.0f} ms ({inv_seconds / off_seconds:.2f}x)"
    )
    print(
        f"five-injector chaos: {chaos_seconds * 1e3:.0f} ms "
        f"({chaos_seconds / off_seconds:.2f}x; perturbed runs do more work)"
    )
    assert inv_seconds > 0 and chaos_seconds > 0
