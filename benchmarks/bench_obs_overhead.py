"""Observability off must cost <2% — the ISSUE's zero-cost criterion.

Strategy: the instrumentation is a *module-level no-op guard* — every hook
site reduces to one ``x is not None`` test when no session is installed.
A guard's cost is too small to resolve inside one real simulation run
(run-to-run noise swamps it), so we measure it directly:

1. A **bare engine replica** (the pre-instrumentation event loop, inlined
   below) and the reference :class:`repro.sim.HeapEngine` each drain the
   same synthetic event storm; the timing delta is the guard cost per
   event on the loop architecture that actually carries per-event guards.
   (The production :class:`~repro.sim.Engine` hoists the ``obs`` test out
   of its fast loop entirely when no session is attached — see
   ``docs/performance.md`` — so this per-event estimate is an upper
   bound for it.)
2. A real tiny run with obs off gives events-processed and wall-clock.
   Estimated overhead = guard cost x events x guard sites / runtime.

The estimate is asserted below 2%; the full-instrumentation ratio is also
measured and printed for the docs (informational, no threshold — ``full``
mode is *supposed* to pay for its data).
"""

from __future__ import annotations

import heapq
import pathlib
import time

from repro import GpuUvmSimulator, build_workload, obs, systems
from repro.errors import SimulationError
from repro.sim.engine import HeapEngine

#: Upper bound on `is not None` guard evaluations per engine event across
#: all instrumented components (engine step, fault path, buffer, DMA, SM).
GUARD_SITES_PER_EVENT = 8

#: Events in the synthetic storm used to resolve the per-event guard cost.
STORM_EVENTS = 200_000

#: Upper bound on the *additional* `analytics is not None` guards per
#: engine event added by repro.obs.analytics: op execution (2 charge
#: sites), warp wake (3 wake paths), batch begin/end, page arrival, SM
#: context switch.  When analytics is disabled these are the only cost.
ANALYTICS_GUARD_SITES = 8


class BareEngine(HeapEngine):
    """The seed's event loop, verbatim minus the obs hooks.

    ``step``/``run`` below are byte-for-byte the pre-instrumentation
    bodies (commit c1363d8), so the timing delta against
    :class:`HeapEngine` — the reference loop those hooks were added to —
    isolates exactly what the observability change added per event.
    """

    def step(self) -> bool:
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = time
        self._events_processed += 1
        callback()
        return True

    def run(self, until=None, max_events=None) -> None:
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            if not self._queue or self._queue[0][0] > until:
                self.now = until


def drain_storm(engine, n: int = STORM_EVENTS) -> float:
    """Time draining n self-rescheduling events; returns seconds."""
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.schedule(1, tick)

    engine.schedule(0, tick)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def interleaved_mins(fn_a, fn_b, repeats: int = 7) -> tuple[float, float]:
    """Best-of timings for two rivals, alternating so drift hits both."""
    a_times, b_times = [], []
    for _ in range(repeats):
        a_times.append(fn_a())
        b_times.append(fn_b())
    return min(a_times), min(b_times)


def timed_tiny_run(obs_session) -> tuple[float, int]:
    """(wall seconds, engine events) for one KCORE tiny run."""
    workload = build_workload("KCORE", scale="tiny", seed=0)
    config = systems.by_name("TO+UE").configure(workload)
    sim = GpuUvmSimulator(workload, config, obs=obs_session)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start, sim.engine.events_processed


def test_obs_off_overhead_below_two_percent():
    assert obs.current() is None, "a leaked obs session would skew timing"

    bare, guarded = interleaved_mins(
        lambda: drain_storm(BareEngine()), lambda: drain_storm(HeapEngine())
    )
    guard_cost_per_event = max(0.0, guarded - bare) / STORM_EVENTS

    off_seconds, events = min(timed_tiny_run(None) for _ in range(3))
    estimated = guard_cost_per_event * GUARD_SITES_PER_EVENT * events
    overhead = estimated / off_seconds

    print(
        f"\nguard cost: {guard_cost_per_event * 1e9:.1f} ns/event "
        f"(bare {bare * 1e3:.1f} ms vs guarded {guarded * 1e3:.1f} ms "
        f"over {STORM_EVENTS:,} events)"
    )
    print(
        f"obs off: {off_seconds * 1e3:.0f} ms, {events:,} engine events, "
        f"estimated guard overhead {overhead:.3%} "
        f"({GUARD_SITES_PER_EVENT} guard sites/event)"
    )
    assert overhead < 0.02, (
        f"obs-off guard overhead {overhead:.3%} exceeds the 2% budget"
    )


def test_analytics_off_overhead_below_two_percent():
    """Analytics disabled must stay under the same 2% budget.

    With ``analytics=False`` every analytics hook is one pointer test
    (``self._an is not None`` / ``self.analytics is not None``), the same
    shape the base instrumentation uses, so the measured per-guard cost
    transfers directly: estimated overhead = guard cost x analytics guard
    sites x events / runtime.
    """
    assert obs.current() is None, "a leaked obs session would skew timing"

    bare, guarded = interleaved_mins(
        lambda: drain_storm(BareEngine()), lambda: drain_storm(HeapEngine())
    )
    guard_cost_per_event = max(0.0, guarded - bare) / STORM_EVENTS

    off_seconds, events = min(timed_tiny_run(None) for _ in range(3))
    estimated = guard_cost_per_event * ANALYTICS_GUARD_SITES * events
    overhead = estimated / off_seconds

    print(
        f"\nanalytics off: estimated guard overhead {overhead:.3%} "
        f"({ANALYTICS_GUARD_SITES} analytics guard sites/event over "
        f"{events:,} events)"
    )
    assert overhead < 0.02, (
        f"analytics-off guard overhead {overhead:.3%} exceeds the 2% budget"
    )


def _timed_tiny_sim(checkpoint_dir=None, every=1):
    """Like :func:`timed_tiny_run` but returns the simulator too."""
    workload = build_workload("KCORE", scale="tiny", seed=0)
    config = systems.by_name("TO+UE").configure(workload)
    sim = GpuUvmSimulator(workload, config)
    if checkpoint_dir is not None:
        sim.enable_checkpoints(checkpoint_dir, every=every)
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, sim, result


#: Pointer tests the disabled checkpoint path pays per *lifecycle
#: transition* (not per event): the batch machine's observer slot, the
#: observer's invariants + hook tests, and the ``complete`` compare.
CHECKPOINT_GUARD_SITES_PER_TRANSITION = 4


def test_checkpoint_off_overhead_below_two_percent():
    """Checkpointing disabled must cost <2% — same budget as obs off.

    With no checkpoint hook installed the engine keeps its unguarded
    fast loop (hook selection happens once per ``run()``), so the only
    recurring cost is the batch machine's observer forward — a handful
    of pointer tests per *batch transition*, and transitions are three
    orders of magnitude rarer than events.  Estimated the same way as
    the obs guards: measured per-guard cost x sites x transitions.
    """
    assert obs.current() is None, "a leaked obs session would skew timing"

    bare, guarded = interleaved_mins(
        lambda: drain_storm(BareEngine()), lambda: drain_storm(HeapEngine())
    )
    guard_cost_per_event = max(0.0, guarded - bare) / STORM_EVENTS

    off_seconds, sim, _ = min(
        (_timed_tiny_sim() for _ in range(3)), key=lambda t: t[0]
    )
    transitions = sum(sim.runtime.machine.counts.values()) + sum(
        sim.engine.lifecycle.counts.values()
    )
    events = sim.engine.events_processed
    estimated = (
        guard_cost_per_event * CHECKPOINT_GUARD_SITES_PER_TRANSITION
        * transitions
    )
    overhead = estimated / off_seconds

    print(
        f"\ncheckpoint off: {transitions:,} lifecycle transitions over "
        f"{events:,} events ({transitions / events:.4%} of events), "
        f"estimated overhead {overhead:.4%} "
        f"({CHECKPOINT_GUARD_SITES_PER_TRANSITION} guards/transition)"
    )
    assert overhead < 0.02, (
        f"checkpoint-off overhead {overhead:.3%} exceeds the 2% budget"
    )


def test_checkpoint_write_restore_latency_informational(tmp_path):
    """Measure (and print) checkpoint write/restore latency — no
    threshold, but the resumed run must stay bit-identical."""
    from repro.checkpoint import restore_checkpoint

    off_seconds, _, baseline = _timed_tiny_sim()
    on_seconds, sim, result = _timed_tiny_sim(tmp_path, every=1)
    assert result == baseline, "checkpointing changed the simulation"
    assert sim.checkpoint_writes > 0

    per_write = sim.checkpoint_write_seconds / sim.checkpoint_writes
    size = pathlib.Path(sim.last_checkpoint_path).stat().st_size

    start = time.perf_counter()
    restored = restore_checkpoint(sim.last_checkpoint_path)
    restore_seconds = time.perf_counter() - start
    resumed = restored.resume()
    assert resumed == baseline, "restored run diverged"

    print(
        f"\ncheckpointing every batch: {sim.checkpoint_writes} writes, "
        f"{per_write * 1e3:.2f} ms/write ({size / 1024:.0f} KiB file), "
        f"restore {restore_seconds * 1e3:.2f} ms; "
        f"run {on_seconds * 1e3:.0f} ms vs off {off_seconds * 1e3:.0f} ms "
        f"({on_seconds / off_seconds:.2f}x with every-batch writes)"
    )


def test_full_mode_ratio_informational():
    """Measure (and print) what full instrumentation costs — no threshold."""
    off_seconds, _ = timed_tiny_run(None)
    full = obs.Observability("full")
    full_seconds, _ = timed_tiny_run(full)
    ratio = full_seconds / off_seconds
    print(
        f"\nfull-mode run: {full_seconds * 1e3:.0f} ms vs off "
        f"{off_seconds * 1e3:.0f} ms ({ratio:.2f}x, "
        f"{len(full.tracer.events):,} trace events, "
        f"{len(full.metrics)} metric series)"
    )
    assert len(full.tracer.events) > 0
