"""Figure 5 — context switching hurts traditional (fully resident) GPUs."""

from repro.experiments import fig05_context_switch


def test_fig5_context_switch_degradation(benchmark, bench_scale,
                                         experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig05_context_switch, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    average = result.value("AVERAGE", "relative_perf")
    # Forced oversubscription must cost performance on average (the paper
    # reports 0.51 relative performance) and never help meaningfully.
    assert average < 1.0
    for label, values in result.rows:
        if label != "AVERAGE":
            assert values["relative_perf"] <= 1.05, label
    # At least some workloads pay a visible (>5%) penalty.
    penalised = [
        label
        for label, values in result.rows
        if label != "AVERAGE" and values["relative_perf"] < 0.95
    ]
    assert penalised
