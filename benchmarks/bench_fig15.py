"""Figure 15 — premature evictions stay bounded under TO."""

from repro.experiments import fig15_premature_eviction


def test_fig15_premature_evictions_bounded(benchmark, bench_scale,
                                           experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig15_premature_eviction, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    base_avg = result.value("AVERAGE", "baseline_pct")
    to_avg = result.value("AVERAGE", "to_pct")
    # The adaptive degree controller bounds the average increase to a
    # modest amount (the paper finds TO *decreases* it for most workloads).
    assert to_avg <= base_avg * 1.25 + 5.0
    # Rates are valid percentages.
    for label, values in result.rows:
        assert 0.0 <= values["baseline_pct"] <= 100.0, label
        assert 0.0 <= values["to_pct"] <= 100.0, label
