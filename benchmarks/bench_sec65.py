"""Section 6.5 — insensitivity to the context-switch cost model."""

from repro.experiments import sec65_context_cost


def test_sec65_context_cost_insensitivity(benchmark, bench_scale,
                                          experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(sec65_context_cost, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    normalised = result.column("normalised")
    # Under demand paging the switch latency hides inside batch stalls:
    # even doubling (or zeroing) the cost moves execution time by far less
    # than the cost delta itself.
    assert max(normalised) / min(normalised) < 1.4
    # Costlier switching does show up in the switch-cycle accounting.
    assert result.value("x2", "switch_cycles") >= result.value(
        "x0", "switch_cycles"
    )
