"""Serving-layer benchmark: sustained throughput and warm-cache latency.

Boots an in-process ``repro-serve`` server over a fresh cache directory
and measures three phases against it:

* **cold** — a mix of distinct tiny cells issued concurrently; measures
  sustained request throughput while every cell actually simulates
  (admission → batching → ``run_cells`` → settle).
* **warm** — the same mix again: every request is a cache hit served
  straight off the admission fast path.  The gated number is the
  client-observed p99 latency here (< 50 ms on the quick mix).
* **dedupe burst** — N identical concurrent requests; verifies the
  flight executes once and reports the dedupe fan-in.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run, writes BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI-sized, no file written
    PYTHONPATH=src python benchmarks/bench_serve.py --quick --check BENCH_serve.json

``--check`` enforces the warm-cache p99 ceiling (``--p99-limit``,
default 50 ms) and compares warm throughput against the committed
baseline, exiting non-zero on regression beyond ``--tolerance`` — the
CI serve perf gate (see ``.github/workflows/ci.yml`` and
``docs/serving.md``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.serve.testing import running_server  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"

#: The quick preset mix: distinct tiny cells across workloads/seeds.
def request_mix(cells: int) -> list[dict]:
    workloads = ["KCORE", "BFS-TWC", "PR", "BFS-TTC"]
    return [
        {
            "workload": workloads[i % len(workloads)],
            "scale": "tiny",
            "seed": i // len(workloads),
        }
        for i in range(cells)
    ]


def _issue(client, requests: list[dict], concurrency: int):
    """Fire ``requests`` with bounded concurrency; returns latencies (s)."""
    latencies = [0.0] * len(requests)

    def one(index: int) -> int:
        start = time.perf_counter()
        response = client.run(**requests[index])
        latencies[index] = time.perf_counter() - start
        return response.status

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        statuses = list(pool.map(one, range(len(requests))))
    assert all(s == 200 for s in statuses), f"non-200 in bench: {statuses}"
    return latencies


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
    return ordered[index]


def _phase(latencies: list[float], wall: float) -> dict:
    return {
        "requests": len(latencies),
        "wall_seconds": round(wall, 4),
        "req_per_s": round(len(latencies) / wall, 2) if wall else 0.0,
        "latency_ms": {
            "mean": round(statistics.mean(latencies) * 1000, 3),
            "p50": round(_percentile(latencies, 50) * 1000, 3),
            "p99": round(_percentile(latencies, 99) * 1000, 3),
        },
    }


def collect(quick: bool = False) -> dict:
    cells = 6 if quick else 12
    warm_rounds = 2 if quick else 4
    concurrency = 4 if quick else 8
    dedupe_n = 8 if quick else 16
    mix = request_mix(cells)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        with running_server(
            cache_dir=tmp, batch_window=0.01, queue_limit=256
        ) as (server, client):
            start = time.perf_counter()
            cold_lat = _issue(client, mix, concurrency)
            cold_wall = time.perf_counter() - start

            warm_requests = mix * warm_rounds
            start = time.perf_counter()
            warm_lat = _issue(client, warm_requests, concurrency)
            warm_wall = time.perf_counter() - start

            baseline_stats = client.stats()
            base_misses = baseline_stats["run_cache"]["misses"]
            burst = [dict(mix[0], seed=991)] * dedupe_n
            start = time.perf_counter()
            burst_lat = _issue(client, burst, min(dedupe_n, 8))
            burst_wall = time.perf_counter() - start
            stats = client.stats()
            burst_executions = stats["run_cache"]["misses"] - base_misses

            server_stats = stats["server"]

    report = {
        "quick": quick,
        "mix_cells": cells,
        "concurrency": concurrency,
        "cold": _phase(cold_lat, cold_wall),
        "warm": _phase(warm_lat, warm_wall),
        "dedupe_burst": {
            **_phase(burst_lat, burst_wall),
            "fan_in": dedupe_n,
            "executions": burst_executions,
        },
        "server": {
            "cache_hit_rate": round(server_stats["cache"]["hit_rate"], 4),
            "dedupe_hits": server_stats["dedupe_hits"],
            "batches": server_stats["batches"],
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    assert burst_executions <= 1, (
        f"dedupe burst ran {burst_executions} cells; expected at most one "
        "(0 when the prior mix already cached the cell)"
    )
    return report


def check_against(
    report: dict, baseline_path: pathlib.Path, tolerance: float, p99_limit: float
) -> int:
    failures = []
    warm_p99 = report["warm"]["latency_ms"]["p99"]
    if warm_p99 >= p99_limit:
        failures.append(
            f"warm-cache p99 {warm_p99:.1f} ms >= limit {p99_limit:.1f} ms"
        )
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        base_rps = baseline["warm"]["req_per_s"]
        got_rps = report["warm"]["req_per_s"]
        if got_rps < base_rps * (1 - tolerance):
            failures.append(
                f"warm throughput {got_rps:.1f} req/s regressed past "
                f"{tolerance:.0%} of baseline {base_rps:.1f} req/s"
            )
    else:
        print(f"note: baseline {baseline_path} missing; p99 gate only")
    print(json.dumps(report, indent=1, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: warm p99 {warm_p99:.1f} ms < {p99_limit:.1f} ms, "
        f"warm {report['warm']['req_per_s']:.1f} req/s, "
        f"cold {report['cold']['req_per_s']:.1f} req/s"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (smaller mix); skips writing the report file",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, metavar="BASELINE",
        help="gate against BENCH_serve.json; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional warm-throughput drop vs baseline (default 0.5)",
    )
    parser.add_argument(
        "--p99-limit", type=float, default=50.0,
        help="hard ceiling for warm-cache p99 latency in ms (default 50)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT,
        help=f"output path for the full-run report (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    report = collect(quick=args.quick)
    if args.check is not None:
        return check_against(report, args.check, args.tolerance, args.p99_limit)
    print(json.dumps(report, indent=1, sort_keys=True))
    if not args.quick:
        args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
