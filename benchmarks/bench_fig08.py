"""Figure 8 — oversubscription cost and the ideal-eviction bound."""

from repro.experiments import fig08_eviction_impact


def test_fig8_oversubscription_and_ideal_eviction(benchmark, bench_scale,
                                                  experiment_cache,
                                                  save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig08_eviction_impact, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    base_avg = result.value("AVERAGE", "baseline")
    ideal_avg = result.value("AVERAGE", "ideal_eviction")
    # Oversubscription costs a large fraction of performance on average.
    assert base_avg < 0.75
    # Removing eviction latency recovers part of it, but not all.
    assert ideal_avg > base_avg
    assert ideal_avg < 1.0
    # Per-workload: ideal eviction never loses to the baseline.
    for label, values in result.rows:
        assert values["ideal_eviction"] >= values["baseline"] * 0.99, label
