"""Shared benchmark fixtures.

Each ``bench_*`` module regenerates one paper table/figure.  Experiment
results are cached per session (simulations are deterministic), the
rendered tables are written to ``benchmarks/results/`` so the regenerated
figures are inspectable after a ``pytest benchmarks/ --benchmark-only``
run, and shape assertions check the paper's qualitative claims.

Set ``REPRO_BENCH_SCALE=small`` (or ``medium``) for higher-fidelity, much
slower runs; the default ``tiny`` keeps the whole suite in minutes.

Simulation cells additionally hit the *persistent* run cache in
``.repro-cache/`` (shared with the ``repro-experiments`` CLI), so a
benchmark session after a CLI sweep — or a second benchmark session —
reuses every completed run.  ``REPRO_JOBS=N`` fans cache-missing cells
out across N worker processes; ``REPRO_CACHE=0`` / ``REPRO_CACHE_DIR``
disable or relocate the cache.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import common

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_RESULT_CACHE: dict[tuple, object] = {}


@pytest.fixture(scope="session", autouse=True)
def _experiment_layer_config():
    """Honour the REPRO_JOBS/REPRO_CACHE* environment for the session."""
    jobs = os.environ.get("REPRO_BENCH_JOBS") or os.environ.get("REPRO_JOBS")
    if jobs:
        common.set_default_jobs(int(jobs))
    yield


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def experiment_cache():
    """Memoise experiment runs across benchmark tests."""

    def run_cached(module, scale: str, **kwargs):
        key = (module.__name__, scale, tuple(sorted(kwargs.items())))
        if key not in _RESULT_CACHE:
            _RESULT_CACHE[key] = module.run(scale=scale, **kwargs)
        return _RESULT_CACHE[key]

    return run_cached


@pytest.fixture(scope="session")
def save_table():
    """Write a rendered experiment table under benchmarks/results/."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def save(result) -> str:
        text = result.format_table()
        path = RESULTS_DIR / f"{result.experiment}.txt"
        path.write_text(text + "\n")
        return text

    return save
