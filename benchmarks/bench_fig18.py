"""Figure 18 — sensitivity to the GPU runtime fault handling time."""

from repro.experiments import fig18_fault_latency_sweep


def test_fig18_fault_handling_time_sensitivity(benchmark, bench_scale,
                                               experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig18_fault_latency_sweep, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    to = result.column("to")
    to_ue = result.column("to_ue")
    # The amortisation mechanism: TO's benefit grows with the cost being
    # amortised.
    assert to[-1] > to[0]
    # The composed system beats the baseline at every fault-handling cost.
    assert all(s > 1.0 for s in to_ue)
    # At this scale UE's FHT-independent share flattens the composed
    # trend (EXPERIMENTS.md); it must at least not collapse.
    assert to_ue[-1] > to_ue[0] - 0.15
