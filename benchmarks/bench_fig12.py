"""Figure 12 — TO reduces the total number of batches."""

from repro.experiments import fig12_num_batches


def test_fig12_fewer_batches_under_to(benchmark, bench_scale,
                                      experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig12_num_batches, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    # Average relative batch count drops below the baseline's 100%.
    assert result.value("AVERAGE", "relative_pct") < 100.0
    # A majority of workloads individually see fewer (or equal) batches.
    improved = [
        label
        for label, values in result.rows
        if label != "AVERAGE" and values["relative_pct"] <= 100.0
    ]
    total = len(result.rows) - 1
    assert len(improved) >= total // 2
