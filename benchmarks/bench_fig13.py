"""Figure 13 — TO grows the average batch size."""

from repro.experiments import fig13_batch_size


def test_fig13_bigger_batches_under_to(benchmark, bench_scale,
                                       experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig13_batch_size, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    # Average relative batch size exceeds the baseline's 100%.
    assert result.value("AVERAGE", "relative_pct") > 100.0
    # A majority of workloads individually grow their batches.
    grown = [
        label
        for label, values in result.rows
        if label != "AVERAGE" and values["relative_pct"] >= 100.0
    ]
    total = len(result.rows) - 1
    assert len(grown) >= total // 2
