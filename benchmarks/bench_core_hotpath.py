"""Event-core hot-path benchmark: two-level Engine vs HeapEngine.

Measures the fast-path rework's speedup as a *ratio* against the in-tree
reference implementation (:class:`repro.sim.HeapEngine`, the seed's
single-heap loop kept verbatim), so the number is comparable across
machines — absolute events/sec are recorded informationally.

Three synthetic storms bracket the traffic shapes the simulator
generates, plus end-to-end tiny-scale simulation cells run twice — once
with the production engine, once with ``repro.simulator.Engine``
re-pointed at :class:`HeapEngine` — to show the whole-simulation effect.
The e2e pass doubles as an equivalence smoke test: both engines must
produce identical :class:`~repro.simulator.SimulationResult` fields (the
full lock is ``tests/test_equivalence_golden.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_core_hotpath.py             # full run, writes BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_core_hotpath.py --quick     # CI-sized run, no file written
    PYTHONPATH=src python benchmarks/bench_core_hotpath.py --quick --check BENCH_core.json

``--check`` compares the measured micro speedup ratio against the
committed baseline and exits non-zero when it regressed by more than
``--tolerance`` (default 25%) — the CI perf gate (see
``.github/workflows/ci.yml`` and ``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import pathlib
import sys
import time

from repro import build_workload, systems
import repro.simulator as simulator_mod
from repro.sim.engine import Engine, HeapEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_core.json"

#: End-to-end cells: one batching-heavy traversal and one small-batch
#: degenerate case, both tiny-scale and deterministic.
E2E_CELLS = [("TO+UE", "BFS-TTC"), ("BASELINE", "KCORE")]


# ----------------------------------------------------------------------
# Micro storms: each schedules ``n`` events into a fresh engine and
# drains them, returning (wall seconds, events fired).  Shapes mirror
# the simulator's traffic: dense same-cycle warp wavefronts, serial
# dependent chains, and batch-style far-future arrivals mixed with
# near-term compute.
# ----------------------------------------------------------------------
def storm_dense_wavefront(engine, n: int) -> tuple[float, int]:
    """32 events per cycle (a warp wavefront) rescheduling themselves."""
    width = 32
    rounds = [n // width]

    def tick() -> None:
        pass

    def advance() -> None:
        rounds[0] -= 1
        if rounds[0] > 0:
            for _ in range(width - 1):
                engine.schedule(1, tick)
            engine.schedule(1, advance)

    for _ in range(width - 1):
        engine.schedule(0, tick)
    engine.schedule(0, advance)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start, engine.events_processed


def storm_serial_chain(engine, n: int) -> tuple[float, int]:
    """One self-rescheduling event, delay 1 — pure per-event overhead."""
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.schedule(1, tick)

    engine.schedule(0, tick)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start, engine.events_processed


def storm_mixed_horizon(engine, n: int) -> tuple[float, int]:
    """Near-term compute mixed with far-future batch-style arrivals.

    Every 16th event schedules its successor ~2 near-windows out (like a
    migration arrival or batch window), exercising the far heap and the
    far->bucket migration path; the rest stay near.
    """
    remaining = [n]
    counter = [0]
    far_delay = 10_000  # beyond the default 4096-cycle near window

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            counter[0] += 1
            delay = far_delay if counter[0] % 16 == 0 else (counter[0] % 64) + 1
            engine.schedule(delay, tick)

    engine.schedule(0, tick)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start, engine.events_processed


MICRO_STORMS = [
    ("dense_wavefront", storm_dense_wavefront),
    ("serial_chain", storm_serial_chain),
    ("mixed_horizon", storm_mixed_horizon),
]


def run_micro(storm, n_events: int, repeats: int) -> tuple[float, float]:
    """Best-of events/sec for one storm on both engine classes.

    Repeats interleave the two engines back-to-back, alternating which
    goes first, so minute-scale machine-frequency drift biases neither
    side of the reported ratio.
    """
    best = {Engine: math.inf, HeapEngine: math.inf}
    for i in range(repeats):
        order = (HeapEngine, Engine) if i % 2 == 0 else (Engine, HeapEngine)
        for engine_cls in order:
            seconds, fired = storm(engine_cls(), n_events)
            best[engine_cls] = min(best[engine_cls], seconds / fired)
    return 1.0 / best[Engine], 1.0 / best[HeapEngine]  # events per second


# ----------------------------------------------------------------------
# End-to-end: full tiny-scale simulations under each engine.
# ----------------------------------------------------------------------
def timed_e2e(engine_cls, system: str, workload: str) -> tuple[float, int, dict]:
    wl = build_workload(workload, scale="tiny", seed=0)
    config = systems.by_name(system).configure(wl, ratio=0.5)
    original = simulator_mod.Engine
    simulator_mod.Engine = engine_cls
    try:
        sim = simulator_mod.GpuUvmSimulator(wl, config)
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
    finally:
        simulator_mod.Engine = original
    encoded = dataclasses.asdict(result)
    encoded.pop("batch_stats")
    return elapsed, sim.engine.events_processed, encoded


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def collect(quick: bool) -> dict:
    n_events = 50_000 if quick else 300_000
    repeats = 3 if quick else 5
    cells = E2E_CELLS[:1] if quick else E2E_CELLS

    micro = {}
    for name, storm in MICRO_STORMS:
        engine_eps, heap_eps = run_micro(storm, n_events, repeats)
        micro[name] = {
            "engine_events_per_sec": round(engine_eps),
            "heap_events_per_sec": round(heap_eps),
            "speedup": round(engine_eps / heap_eps, 3),
        }
        print(
            f"micro {name:>16}: {engine_eps / 1e6:6.2f} M ev/s vs "
            f"heap {heap_eps / 1e6:6.2f} M ev/s "
            f"({micro[name]['speedup']:.2f}x)"
        )

    e2e = {}
    e2e_repeats = 1 if quick else 3
    for system, workload in cells:
        heap_s = eng_s = math.inf
        for _ in range(e2e_repeats):
            h_s, heap_events, heap_result = timed_e2e(
                HeapEngine, system, workload
            )
            e_s, eng_events, eng_result = timed_e2e(Engine, system, workload)
            if eng_result != heap_result or eng_events != heap_events:
                raise SystemExit(
                    f"ENGINE DIVERGENCE on {system}/{workload}: the two "
                    "engines produced different results — run "
                    "tests/test_equivalence_golden.py"
                )
            heap_s = min(heap_s, h_s)
            eng_s = min(eng_s, e_s)
        key = f"{system}/{workload}"
        e2e[key] = {
            "engine_seconds": round(eng_s, 4),
            "heap_seconds": round(heap_s, 4),
            "events": eng_events,
            "speedup": round(heap_s / eng_s, 3),
        }
        print(
            f"e2e {key:>16}: {eng_s:6.2f}s vs heap {heap_s:6.2f}s "
            f"({e2e[key]['speedup']:.2f}x, {eng_events:,} events)"
        )

    report = {
        "schema": 1,
        "quick": quick,
        "micro": micro,
        "micro_speedup_geomean": round(
            geomean([m["speedup"] for m in micro.values()]), 3
        ),
        "e2e": e2e,
        "e2e_speedup_geomean": round(
            geomean([c["speedup"] for c in e2e.values()]), 3
        ),
    }
    print(
        f"geomean speedup: micro {report['micro_speedup_geomean']:.2f}x, "
        f"e2e {report['e2e_speedup_geomean']:.2f}x"
    )
    return report


def check_against(report: dict, baseline_path: pathlib.Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    committed = baseline["micro_speedup_geomean"]
    measured = report["micro_speedup_geomean"]
    floor = committed * (1.0 - tolerance)
    print(
        f"perf gate: measured micro speedup {measured:.2f}x vs committed "
        f"{committed:.2f}x (floor {floor:.2f}x at {tolerance:.0%} tolerance)"
    )
    if measured < floor:
        print(
            "PERF REGRESSION: the fast-path engine's speedup over the "
            "in-tree HeapEngine baseline dropped by more than "
            f"{tolerance:.0%}. If the engine change is intentional, rerun "
            "`PYTHONPATH=src python benchmarks/bench_core_hotpath.py` and "
            "commit the refreshed BENCH_core.json (see docs/performance.md).",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer events/repeats, one e2e cell); skips writing",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, metavar="BASELINE",
        help="compare against a committed BENCH_core.json; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop in the micro speedup geomean (default 0.25)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT,
        help=f"output path for the full-run report (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    report = collect(quick=args.quick)
    if args.check is not None:
        return check_against(report, args.check, args.tolerance)
    if not args.quick:
        args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
