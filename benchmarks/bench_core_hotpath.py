"""Core hot-path benchmark: fast engine + SoA warp model vs references.

Measures the production fast paths as *ratios* against the in-tree
reference implementations, so the numbers are comparable across
machines — absolute events/sec are recorded informationally:

* micro storms: the two-level calendar :class:`repro.sim.Engine` vs the
  seed's single-heap :class:`repro.sim.HeapEngine`, on synthetic event
  traffic;
* end-to-end cells: the production stack (``Engine`` + the struct-of-
  arrays warp backend, ``backend="soa"``) vs the full reference stack
  (``HeapEngine`` + the per-warp-object model, ``backend="object"``),
  on deterministic simulations, in two groups:

  - ``e2e`` — memory-adequate cells whose runtime is dominated by the
    vectorized warp/fault model (warp issue, TLB/cache probes, fault
    raising and arrival handling): the subsystem speedup, end to end;
  - ``fullstack`` — the paper's 50 % oversubscription operating point,
    where shared driver-side batch machinery (eviction planning,
    prefetch arithmetic, PCIe scheduling — identical code in both
    stacks) dominates and structurally dilutes the backend difference.

Every e2e/fullstack pass doubles as an equivalence smoke test: both
stacks must produce identical :class:`~repro.simulator.SimulationResult`
fields and event counts (the full lock is
``tests/test_equivalence_golden.py`` and ``tests/test_soa_equivalence.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_core_hotpath.py             # full run, writes BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_core_hotpath.py --quick     # CI-sized run, no file written
    PYTHONPATH=src python benchmarks/bench_core_hotpath.py --quick --check BENCH_core.json

``--check`` compares the measured micro *and* e2e speedup geomeans
against the committed baseline and exits non-zero when either regressed
by more than ``--tolerance`` (default 25%) — the CI perf gate (see
``.github/workflows/ci.yml`` and ``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import pathlib
import platform
import subprocess
import sys
import time

from repro import build_workload, systems
import repro.simulator as simulator_mod
from repro.sim.engine import Engine, HeapEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_core.json"

#: End-to-end cells measuring the vectorized warp/fault model: memory-
#: adequate configurations (ratio >= 1: no evictions, and for the
#: NO-PREFETCH cells no prefetch arithmetic either), so wall time is
#: dominated by the subsystem this backend rewrote — warp issue, TLB and
#: cache probes, fault raising and batch arrival handling.  Each cell is
#: (system, workload, oversubscription ratio, scale).
E2E_CELLS = [
    ("NO-PREFETCH", "BFS-TTC", 1.5, "small"),
    ("NO-PREFETCH", "BFS-TWC", 1.5, "small"),
    ("UNLIMITED", "BFS-TTC", 1.5, "small"),
]

#: Full-stack context cells: the paper's operating point (50 % memory
#: oversubscription).  There the driver-side batch machinery — eviction
#: planning, prefetch tree arithmetic, PCIe scheduling — dominates, and
#: that code is *shared* between the two stacks, so the backend
#: difference is structurally diluted.  Reported (and gated) separately
#: so the subsystem geomean above is not averaged against a denominator
#: the backend cannot touch.
FULLSTACK_CELLS = [
    ("TO+UE", "BFS-TTC", 0.5, "tiny"),
    ("BASELINE", "KCORE", 0.5, "tiny"),
]


# ----------------------------------------------------------------------
# Micro storms: each schedules ``n`` events into a fresh engine and
# drains them, returning (wall seconds, events fired).  Shapes mirror
# the simulator's traffic: dense same-cycle warp wavefronts, serial
# dependent chains, and batch-style far-future arrivals mixed with
# near-term compute.
# ----------------------------------------------------------------------
def storm_dense_wavefront(engine, n: int) -> tuple[float, int]:
    """32 events per cycle (a warp wavefront) rescheduling themselves."""
    width = 32
    rounds = [n // width]

    def tick() -> None:
        pass

    def advance() -> None:
        rounds[0] -= 1
        if rounds[0] > 0:
            for _ in range(width - 1):
                engine.schedule(1, tick)
            engine.schedule(1, advance)

    for _ in range(width - 1):
        engine.schedule(0, tick)
    engine.schedule(0, advance)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start, engine.events_processed


def storm_serial_chain(engine, n: int) -> tuple[float, int]:
    """One self-rescheduling event, delay 1 — pure per-event overhead."""
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.schedule(1, tick)

    engine.schedule(0, tick)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start, engine.events_processed


def storm_mixed_horizon(engine, n: int) -> tuple[float, int]:
    """Near-term compute mixed with far-future batch-style arrivals.

    Every 16th event schedules its successor ~2 near-windows out (like a
    migration arrival or batch window), exercising the far heap and the
    far->bucket migration path; the rest stay near.
    """
    remaining = [n]
    counter = [0]
    far_delay = 10_000  # beyond the default 4096-cycle near window

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            counter[0] += 1
            delay = far_delay if counter[0] % 16 == 0 else (counter[0] % 64) + 1
            engine.schedule(delay, tick)

    engine.schedule(0, tick)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start, engine.events_processed


MICRO_STORMS = [
    ("dense_wavefront", storm_dense_wavefront),
    ("serial_chain", storm_serial_chain),
    ("mixed_horizon", storm_mixed_horizon),
]


def run_micro(storm, n_events: int, repeats: int) -> tuple[float, float]:
    """Best-of events/sec for one storm on both engine classes.

    Repeats interleave the two engines back-to-back, alternating which
    goes first, so minute-scale machine-frequency drift biases neither
    side of the reported ratio.
    """
    best = {Engine: math.inf, HeapEngine: math.inf}
    for i in range(repeats):
        order = (HeapEngine, Engine) if i % 2 == 0 else (Engine, HeapEngine)
        for engine_cls in order:
            seconds, fired = storm(engine_cls(), n_events)
            best[engine_cls] = min(best[engine_cls], seconds / fired)
    return 1.0 / best[Engine], 1.0 / best[HeapEngine]  # events per second


# ----------------------------------------------------------------------
# End-to-end: full tiny-scale simulations, production vs reference stack.
# ----------------------------------------------------------------------
def timed_e2e(
    engine_cls,
    backend: str,
    system: str,
    workload: str,
    ratio: float = 0.5,
    scale: str = "tiny",
) -> tuple[float, int, dict]:
    wl = build_workload(workload, scale=scale, seed=0)
    config = systems.by_name(system).configure(wl, ratio=ratio)
    original = simulator_mod.Engine
    simulator_mod.Engine = engine_cls
    try:
        sim = simulator_mod.GpuUvmSimulator(wl, config, backend=backend)
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
    finally:
        simulator_mod.Engine = original
    encoded = dataclasses.asdict(result)
    encoded.pop("batch_stats")
    return elapsed, sim.engine.events_processed, encoded


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def provenance() -> dict:
    """Environment stamp: ties a committed baseline to its origin."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or "unknown"
    except OSError:
        commit = "unknown"
    import numpy

    return {
        "commit": commit,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }


def run_cells(cells, repeats: int, label: str) -> dict:
    """Best-of-``repeats`` fast vs reference timing for each cell.

    Fast and reference runs interleave within each repeat so CPU
    frequency drift hits both stacks alike; every pair is also checked
    for result/event-count equality (the bench doubles as an
    equivalence smoke test).
    """
    out = {}
    for system, workload, ratio, scale in cells:
        ref_s = fast_s = math.inf
        for _ in range(repeats):
            r_s, ref_events, ref_result = timed_e2e(
                HeapEngine, "object", system, workload, ratio, scale
            )
            f_s, fast_events, fast_result = timed_e2e(
                Engine, "soa", system, workload, ratio, scale
            )
            if fast_result != ref_result or fast_events != ref_events:
                raise SystemExit(
                    f"BACKEND DIVERGENCE on {system}/{workload}: the "
                    "production stack (Engine + SoA) and the reference "
                    "stack (HeapEngine + object model) produced different "
                    "results — run tests/test_equivalence_golden.py and "
                    "tests/test_soa_equivalence.py"
                )
            ref_s = min(ref_s, r_s)
            fast_s = min(fast_s, f_s)
        key = f"{system}/{workload}"
        out[key] = {
            "fast_seconds": round(fast_s, 4),
            "reference_seconds": round(ref_s, 4),
            "ratio": ratio,
            "scale": scale,
            "events": fast_events,
            "speedup": round(ref_s / fast_s, 3),
        }
        print(
            f"{label} {key:>20}: {fast_s:6.2f}s vs reference {ref_s:6.2f}s "
            f"({out[key]['speedup']:.2f}x, {fast_events:,} events)"
        )
    return out


def collect(quick: bool) -> dict:
    n_events = 50_000 if quick else 300_000
    repeats = 3 if quick else 5
    cells = E2E_CELLS[:1] if quick else E2E_CELLS
    fullstack_cells = FULLSTACK_CELLS[:1] if quick else FULLSTACK_CELLS

    micro = {}
    for name, storm in MICRO_STORMS:
        engine_eps, heap_eps = run_micro(storm, n_events, repeats)
        micro[name] = {
            "engine_events_per_sec": round(engine_eps),
            "heap_events_per_sec": round(heap_eps),
            "speedup": round(engine_eps / heap_eps, 3),
        }
        print(
            f"micro {name:>16}: {engine_eps / 1e6:6.2f} M ev/s vs "
            f"heap {heap_eps / 1e6:6.2f} M ev/s "
            f"({micro[name]['speedup']:.2f}x)"
        )

    e2e_repeats = 1 if quick else 3
    e2e = run_cells(cells, e2e_repeats, "e2e")
    fullstack = run_cells(fullstack_cells, e2e_repeats, "fullstack")

    report = {
        "schema": 3,
        "quick": quick,
        "provenance": provenance(),
        "micro": micro,
        "micro_speedup_geomean": round(
            geomean([m["speedup"] for m in micro.values()]), 3
        ),
        "e2e": e2e,
        "e2e_speedup_geomean": round(
            geomean([c["speedup"] for c in e2e.values()]), 3
        ),
        "fullstack": fullstack,
        "fullstack_speedup_geomean": round(
            geomean([c["speedup"] for c in fullstack.values()]), 3
        ),
    }
    print(
        f"geomean speedup: micro {report['micro_speedup_geomean']:.2f}x, "
        f"e2e {report['e2e_speedup_geomean']:.2f}x, "
        f"fullstack {report['fullstack_speedup_geomean']:.2f}x"
    )
    return report


def check_against(report: dict, baseline_path: pathlib.Path, tolerance: float) -> int:
    """Gate both geomeans against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    status = 0
    for metric, label, hint in (
        ("micro_speedup_geomean", "micro", "two-level engine"),
        ("e2e_speedup_geomean", "e2e", "engine + SoA warp backend"),
        (
            "fullstack_speedup_geomean",
            "fullstack",
            "oversubscribed full-stack",
        ),
    ):
        committed = baseline.get(metric)
        if committed is None:  # pre-schema-2 baseline: no e2e gate
            continue
        measured = report[metric]
        floor = committed * (1.0 - tolerance)
        print(
            f"perf gate [{label}]: measured {measured:.2f}x vs committed "
            f"{committed:.2f}x (floor {floor:.2f}x at {tolerance:.0%} "
            "tolerance)"
        )
        if measured < floor:
            print(
                f"PERF REGRESSION [{label}]: the {hint} speedup over the "
                "in-tree reference dropped by more than "
                f"{tolerance:.0%}. If the change is intentional, rerun "
                "`PYTHONPATH=src python benchmarks/bench_core_hotpath.py` "
                "and commit the refreshed BENCH_core.json (see "
                "docs/performance.md).",
                file=sys.stderr,
            )
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (fewer events/repeats, one e2e cell); skips writing",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, metavar="BASELINE",
        help="compare against a committed BENCH_core.json; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop in each speedup geomean (default 0.25)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT,
        help=f"output path for the full-run report (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    report = collect(quick=args.quick)
    if args.check is not None:
        return check_against(report, args.check, args.tolerance)
    if not args.quick:
        args.out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
