"""Table 1 — simulated system configuration."""

from repro.experiments import table1_config


def test_table1_configuration(benchmark, experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(table1_config, "paper"),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    for label, expected in table1_config.PAPER_TABLE1.items():
        assert result.value(label, "value") == expected, label
