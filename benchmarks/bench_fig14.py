"""Figure 14 — average batch processing time across BASELINE/TO/TO+UE."""

from repro.experiments import fig14_batch_time


def test_fig14_batch_processing_time(benchmark, bench_scale,
                                     experiment_cache, save_table):
    result = benchmark.pedantic(
        lambda: experiment_cache(fig14_batch_time, bench_scale),
        rounds=1,
        iterations=1,
    )
    print(save_table(result))
    to_avg = result.value("AVERAGE", "to")
    to_ue_avg = result.value("AVERAGE", "to_ue")
    # UE pulls the batch processing time below TO alone (paper: -60%) —
    # the central claim of Figure 14.
    assert to_ue_avg < to_avg
    # TO alone raises batch processing time (bigger batches).
    assert to_avg > 0.9
